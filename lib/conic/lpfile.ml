(* LP/MPS text codec for conic models.

   The exporter writes a *canonical* rendering: variables in
   declaration order (pinned by listing every variable in the bounds
   section), rows in insertion order, terms merged and sorted by
   variable index, coefficients as "%.17g" (bit-exact float round
   trip).  The parsers are total — any damage yields [Error _], never
   an exception — and accept exactly the dialect the exporter writes
   plus a few benign spelling variants.  On canonical input,
   parse-then-re-export is byte-identical; that identity is the
   contract the differential tests pin. *)

type rel = Ge | Le | Eq
type bound = Free | Fixed of float

type row = {
  row_name : string;
  linear : (float * int) list;
  quad : (float * int * int) list;
  rel : rel;
  rhs : float;
}

type t = {
  name : string;
  vars : string array;
  bounds : bound array;
  objective : (float * int) list;
  obj_const : float;
  rows : row list;
}

(* ---- canonicalisation -------------------------------------------- *)

let merge_linear terms =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (k, v) ->
      let cur = try Hashtbl.find tbl v with Not_found -> 0.0 in
      Hashtbl.replace tbl v (cur +. k))
    terms;
  Hashtbl.fold (fun v k acc -> if k = 0.0 then acc else (k, v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare a b)

let merge_quad terms =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (k, i, j) ->
      let key = if i <= j then (i, j) else (j, i) in
      let cur = try Hashtbl.find tbl key with Not_found -> 0.0 in
      Hashtbl.replace tbl key (cur +. k))
    terms;
  Hashtbl.fold
    (fun (i, j) k acc -> if k = 0.0 then acc else (k, i, j) :: acc)
    tbl []
  |> List.sort (fun (_, a, b) (_, c, d) -> compare (a, b) (c, d))

let canon t =
  let name =
    let s =
      String.map (fun c -> if Char.code c < 0x20 then '_' else c) t.name
      |> String.trim
    in
    if s = "" then "model" else s
  in
  {
    t with
    name;
    objective = merge_linear t.objective;
    rows =
      List.filter_map
        (fun r ->
          let linear = merge_linear r.linear and quad = merge_quad r.quad in
          if linear = [] && quad = [] then None
          else Some { r with linear; quad })
        t.rows;
  }

let equal a b = canon a = canon b

(* ---- number rendering -------------------------------------------- *)

let fstr f =
  if Float.is_finite f then Printf.sprintf "%.17g" f
  else if Float.is_nan f then "nan"
  else if f > 0.0 then "inf"
  else "-inf"

(* ---- MPS writer -------------------------------------------------- *)

let to_mps t0 =
  let t = canon t0 in
  let b = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "NAME %s\n" t.name;
  pr "ROWS\n";
  pr " N obj\n";
  List.iter
    (fun r ->
      pr " %s %s\n"
        (match r.rel with Ge -> "G" | Le -> "L" | Eq -> "E")
        r.row_name)
    t.rows;
  pr "COLUMNS\n";
  Array.iteri
    (fun v name ->
      List.iter
        (fun (k, v') -> if v' = v then pr " %s obj %s\n" name (fstr k))
        t.objective;
      List.iter
        (fun r ->
          List.iter
            (fun (k, v') ->
              if v' = v then pr " %s %s %s\n" name r.row_name (fstr k))
            r.linear)
        t.rows)
    t.vars;
  pr "RHS\n";
  if t.obj_const <> 0.0 then pr " RHS obj %s\n" (fstr (-.t.obj_const));
  List.iter
    (fun r -> if r.rhs <> 0.0 then pr " RHS %s %s\n" r.row_name (fstr r.rhs))
    t.rows;
  pr "BOUNDS\n";
  Array.iteri
    (fun v name ->
      match t.bounds.(v) with
      | Free -> pr " FR BND %s\n" name
      | Fixed x -> pr " FX BND %s %s\n" name (fstr x))
    t.vars;
  List.iter
    (fun r ->
      if r.quad <> [] then begin
        pr "QCMATRIX %s\n" r.row_name;
        List.iter
          (fun (k, i, j) ->
            if i = j then pr " %s %s %s\n" t.vars.(i) t.vars.(j) (fstr k)
            else begin
              (* CPLEX reads QCMATRIX as x'Qx with Q symmetric, so the
                 cross term k·xᵢ·xⱼ is Qᵢⱼ = Qⱼᵢ = k/2, both written.
                 Splitting as (k − k/2, k/2) keeps the sum bit-exact
                 even when k/2 rounds (subnormal k); the parser's merge
                 folds the halves back into a single canonical term. *)
              let half = k /. 2.0 in
              pr " %s %s %s\n" t.vars.(i) t.vars.(j) (fstr (k -. half));
              pr " %s %s %s\n" t.vars.(j) t.vars.(i) (fstr half)
            end)
          r.quad
      end)
    t.rows;
  pr "ENDATA\n";
  Buffer.contents b

(* ---- LP writer --------------------------------------------------- *)

(* Sign-separated term stream: the first term renders its coefficient
   verbatim ("-2 x0"); later terms render " + |k| v" / " - |k| v".
   NaN counts as non-negative, which keeps the rendering stable under
   reparse. *)
let add_lp_term b ~first k body =
  if first then Buffer.add_string b (Printf.sprintf "%s %s" (fstr k) body)
  else if k < 0.0 then
    Buffer.add_string b (Printf.sprintf " - %s %s" (fstr (Float.abs k)) body)
  else Buffer.add_string b (Printf.sprintf " + %s %s" (fstr k) body)

let lp_expr vars ?(quad = []) ?(const = 0.0) linear =
  let b = Buffer.create 64 in
  let first = ref true in
  if quad <> [] then begin
    Buffer.add_string b "[ ";
    List.iter
      (fun (k, i, j) ->
        let body =
          if i = j then Printf.sprintf "%s ^ 2" vars.(i)
          else Printf.sprintf "%s * %s" vars.(i) vars.(j)
        in
        add_lp_term b ~first:!first k body;
        first := false)
      quad;
    Buffer.add_string b " ]";
    first := false
  end;
  List.iter
    (fun (k, v) ->
      add_lp_term b ~first:!first k vars.(v);
      first := false)
    linear;
  if const <> 0.0 then begin
    add_lp_term b ~first:!first const "";
    (* trim the trailing space a bare constant leaves behind *)
    first := false
  end;
  if !first then Buffer.add_string b "0";
  let s = Buffer.contents b in
  if String.length s > 0 && s.[String.length s - 1] = ' ' then
    String.sub s 0 (String.length s - 1)
  else s

let to_lp t0 =
  let t = canon t0 in
  let b = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "\\Problem name: %s\n" t.name;
  pr "Minimize\n";
  pr " obj: %s\n" (lp_expr t.vars ~const:t.obj_const t.objective);
  pr "Subject To\n";
  List.iter
    (fun r ->
      pr " %s: %s %s %s\n" r.row_name
        (lp_expr t.vars ~quad:r.quad r.linear)
        (match r.rel with Ge -> ">=" | Le -> "<=" | Eq -> "=")
        (fstr r.rhs))
    t.rows;
  pr "Bounds\n";
  Array.iteri
    (fun v name ->
      match t.bounds.(v) with
      | Free -> pr " %s free\n" name
      | Fixed x -> pr " %s = %s\n" name (fstr x))
    t.vars;
  pr "End\n";
  Buffer.contents b

(* ---- total parsing ----------------------------------------------- *)

exception Parse of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse s)) fmt

let num_of tok =
  match float_of_string_opt tok with
  | Some f -> f
  | None -> fail "bad number %S" tok

let split_tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let split_lines text =
  String.split_on_char '\n' text
  |> List.map (fun l ->
         let n = String.length l in
         if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l)

(* Resolve name-keyed terms against the bounds-ordered variable list. *)
let resolver vars =
  let tbl = Hashtbl.create 16 in
  Array.iteri
    (fun i v ->
      if Hashtbl.mem tbl v then fail "duplicate variable %S" v;
      Hashtbl.replace tbl v i)
    vars;
  fun name ->
    match Hashtbl.find_opt tbl name with
    | Some i -> i
    | None -> fail "unknown variable %S" name

(* -- MPS ----------------------------------------------------------- *)

type mps_section =
  | M_preamble
  | M_rows
  | M_columns
  | M_rhs
  | M_bounds
  | M_qc of string
  | M_done

let of_mps_result text =
  try
    let name = ref "model" in
    let section = ref M_preamble in
    let obj_row = ref None in
    let row_decls = ref [] (* reversed: (name, rel) *)
    and col_entries = ref [] (* reversed: (var, row, coef) *)
    and rhs_entries = ref [] (* reversed: (row, value) *)
    and bound_decls = ref [] (* reversed: (var, bound) *)
    and qc_entries = ref [] (* reversed: (row, v1, v2, coef) *) in
    let row_names = Hashtbl.create 16 in
    let declare_row nm rel =
      if Hashtbl.mem row_names nm then fail "duplicate row %S" nm;
      Hashtbl.replace row_names nm ();
      match rel with
      | None ->
        if !obj_row <> None then fail "multiple objective rows";
        obj_row := Some nm
      | Some r -> row_decls := (nm, r) :: !row_decls
    in
    List.iter
      (fun line ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '*' then ()
        else if line.[0] = ' ' || line.[0] = '\t' then begin
          (* data line in the current section *)
          let toks = split_tokens line in
          match (!section, toks) with
          | M_rows, [ "N"; nm ] -> declare_row nm None
          | M_rows, [ "G"; nm ] -> declare_row nm (Some Ge)
          | M_rows, [ "L"; nm ] -> declare_row nm (Some Le)
          | M_rows, [ "E"; nm ] -> declare_row nm (Some Eq)
          | M_columns, var :: rest ->
            let rec pairs = function
              | [] -> ()
              | row :: value :: more ->
                col_entries := (var, row, num_of value) :: !col_entries;
                pairs more
              | [ _ ] -> fail "odd COLUMNS entry"
            in
            if rest = [] then fail "empty COLUMNS entry";
            pairs rest
          | M_rhs, [ _set; row; value ] ->
            rhs_entries := (row, num_of value) :: !rhs_entries
          | M_bounds, [ "FR"; _set; var ] ->
            bound_decls := (var, Free) :: !bound_decls
          | M_bounds, [ "FX"; _set; var; value ] ->
            bound_decls := (var, Fixed (num_of value)) :: !bound_decls
          | M_qc row, [ v1; v2; value ] ->
            qc_entries := (row, v1, v2, num_of value) :: !qc_entries
          | M_done, _ -> fail "content after ENDATA"
          | _, _ -> fail "malformed line %S" trimmed
        end
        else begin
          let toks = split_tokens trimmed in
          match toks with
          | "NAME" :: _ ->
            (* keep the raw remainder: interior whitespace is part of
               the model name, and tokenise-rejoin would break the
               byte-identical re-export of names the writer itself
               produced *)
            let rest =
              String.trim
                (String.sub trimmed 4 (String.length trimmed - 4))
            in
            name := (if rest = "" then "model" else rest)
          | [ "ROWS" ] -> section := M_rows
          | [ "COLUMNS" ] -> section := M_columns
          | [ "RHS" ] -> section := M_rhs
          | [ "BOUNDS" ] -> section := M_bounds
          | [ "QCMATRIX"; row ] -> section := M_qc row
          | [ "ENDATA" ] -> section := M_done
          | s :: _ -> fail "unsupported section %S" s
          | [] -> ()
        end)
      (split_lines text);
    if !section <> M_done then fail "missing ENDATA";
    let obj_row =
      match !obj_row with Some r -> r | None -> fail "no objective row"
    in
    let vars = Array.of_list (List.rev_map fst !bound_decls) in
    let bounds = Array.of_list (List.rev_map snd !bound_decls) in
    let var_index = resolver vars in
    let row_decls = List.rev !row_decls in
    let objective = ref [] and per_row = Hashtbl.create 16 in
    List.iter (fun (nm, _) -> Hashtbl.replace per_row nm (ref [], ref [])) row_decls;
    let row_lists nm =
      match Hashtbl.find_opt per_row nm with
      | Some lists -> lists
      | None -> fail "unknown row %S" nm
    in
    List.iter
      (fun (var, row, k) ->
        let term = (k, var_index var) in
        if row = obj_row then objective := term :: !objective
        else
          let lin, _ = row_lists row in
          lin := term :: !lin)
      (List.rev !col_entries);
    List.iter
      (fun (row, v1, v2, k) ->
        if row = obj_row then fail "quadratic objective not supported";
        let _, quad = row_lists row in
        quad := (k, var_index v1, var_index v2) :: !quad)
      (List.rev !qc_entries);
    let rhs_tbl = Hashtbl.create 16 in
    let obj_const = ref 0.0 in
    List.iter
      (fun (row, v) ->
        if row = obj_row then obj_const := -.v
        else begin
          if not (Hashtbl.mem per_row row) then fail "unknown row %S" row;
          Hashtbl.replace rhs_tbl row v
        end)
      (List.rev !rhs_entries);
    let rows =
      List.map
        (fun (nm, rel) ->
          let lin, quad = row_lists nm in
          {
            row_name = nm;
            linear = List.rev !lin;
            quad = List.rev !quad;
            rel;
            rhs =
              (match Hashtbl.find_opt rhs_tbl nm with
              | Some v -> v
              | None -> 0.0);
          })
        row_decls
    in
    Ok
      {
        name = !name;
        vars;
        bounds;
        objective = List.rev !objective;
        obj_const = !obj_const;
        rows;
      }
  with Parse m -> Error m

(* -- LP ------------------------------------------------------------ *)

let lp_keyword line =
  match String.lowercase_ascii (String.trim line) with
  | "minimize" | "min" -> Some `Minimize
  | "maximize" | "max" -> Some `Maximize
  | "subject to" | "st" | "s.t." | "such that" -> Some `Subject
  | "bounds" -> Some `Bounds
  | "end" -> Some `End
  | _ -> None

let is_lp_punct = function
  | "+" | "-" | "[" | "]" | "^" | "*" | "<=" | ">=" | "=" | "<" | ">" -> true
  | _ -> false

let is_lp_rel = function "<=" | ">=" | "=" | "<" | ">" -> true | _ -> false

let lp_rel_of = function
  | ">=" | ">" -> Ge
  | "<=" | "<" -> Le
  | "=" -> Eq
  | tok -> fail "bad relation %S" tok

let is_lp_name tok =
  tok <> "" && (not (is_lp_punct tok)) && float_of_string_opt tok = None

(* Parse a sign-separated term stream up to (not including) a relation
   token.  Quadratic terms live inside a single [ ... ] group; bare
   numbers accumulate into the constant.  Returns name-keyed terms. *)
let parse_lp_expr ~allow_quad toks =
  let linear = ref [] and quad = ref [] and const = ref 0.0 in
  let rec term ~in_quad ~first sign = function
    | [] ->
      if not first then fail "dangling sign";
      if in_quad then fail "unterminated [";
      []
    | tok :: rest when is_lp_rel tok ->
      if not first then fail "dangling sign";
      if in_quad then fail "unterminated [";
      tok :: rest
    | "+" :: rest -> term ~in_quad ~first:false sign rest
    | "-" :: rest -> term ~in_quad ~first:false (-.sign) rest
    | "[" :: rest ->
      if in_quad then fail "nested [";
      if not allow_quad then fail "quadratic term not allowed here";
      if sign < 0.0 then fail "negated quadratic group";
      let rest = term ~in_quad:true ~first:true 1.0 rest in
      term ~in_quad:false ~first:true 1.0 rest
    | "]" :: rest ->
      if not in_quad then fail "stray ]";
      rest
    | tok :: rest -> begin
      let coef, rest =
        match float_of_string_opt tok with
        | Some f -> (sign *. f, rest)
        | None -> (sign, tok :: rest)
      in
      match rest with
      | v :: more when is_lp_name v -> begin
        match more with
        | "^" :: "2" :: more ->
          if not in_quad then fail "quadratic term outside [ ]";
          quad := (coef, v, v) :: !quad;
          term ~in_quad ~first:true 1.0 more
        | "*" :: w :: more when is_lp_name w ->
          if not in_quad then fail "quadratic term outside [ ]";
          quad := (coef, v, w) :: !quad;
          term ~in_quad ~first:true 1.0 more
        | _ ->
          if in_quad then fail "linear term inside [ ]";
          linear := (coef, v) :: !linear;
          term ~in_quad ~first:true 1.0 more
      end
      | _ ->
        (* bare constant *)
        if tok = "" || float_of_string_opt tok = None then
          fail "bad term %S" tok;
        if in_quad then fail "constant inside [ ]";
        const := !const +. coef;
        term ~in_quad ~first:true 1.0 rest
    end
  in
  let rest = term ~in_quad:false ~first:true 1.0 toks in
  (List.rev !linear, List.rev !quad, !const, rest)

let of_lp_result text =
  try
    let name = ref "model" in
    let obj_tokens = ref [] (* reversed *)
    and row_lines = ref [] (* reversed *)
    and bound_lines = ref [] (* reversed *) in
    let phase = ref `Start in
    List.iter
      (fun line ->
        let trimmed = String.trim line in
        if trimmed = "" then ()
        else if trimmed.[0] = '\\' then begin
          let prefix = "\\Problem name:" in
          if
            String.length trimmed >= String.length prefix
            && String.sub trimmed 0 (String.length prefix) = prefix
          then
            let rest =
              String.sub trimmed (String.length prefix)
                (String.length trimmed - String.length prefix)
              |> String.trim
            in
            if rest <> "" then name := rest
        end
        else
          match lp_keyword trimmed with
          | Some `Minimize ->
            if !phase <> `Start then fail "misplaced Minimize";
            phase := `Objective
          | Some `Maximize -> fail "maximization not supported"
          | Some `Subject ->
            if !phase <> `Objective then fail "misplaced Subject To";
            phase := `Rows
          | Some `Bounds ->
            if !phase <> `Rows then fail "misplaced Bounds";
            phase := `Bounds
          | Some `End ->
            if !phase <> `Rows && !phase <> `Bounds then fail "misplaced End";
            phase := `Done
          | None -> begin
            match !phase with
            | `Start -> fail "expected Minimize"
            | `Objective ->
              obj_tokens := List.rev_append (split_tokens trimmed) !obj_tokens
            | `Rows -> row_lines := trimmed :: !row_lines
            | `Bounds -> bound_lines := trimmed :: !bound_lines
            | `Done -> fail "content after End"
          end)
      (split_lines text);
    if !phase <> `Done then fail "missing End";
    let bounds_decl =
      List.rev_map
        (fun line ->
          match split_tokens line with
          | [ v; "free" ] when is_lp_name v -> (v, Free)
          | [ v; "="; value ] when is_lp_name v -> (v, Fixed (num_of value))
          | _ -> fail "bad bound %S" line)
        !bound_lines
    in
    let vars = Array.of_list (List.map fst bounds_decl) in
    let bounds = Array.of_list (List.map snd bounds_decl) in
    let var_index = resolver vars in
    let obj_tokens =
      match List.rev !obj_tokens with
      | label :: rest
        when String.length label > 0 && label.[String.length label - 1] = ':'
        ->
        rest
      | toks -> toks
    in
    let obj_linear, obj_quad, obj_const, obj_rest =
      parse_lp_expr ~allow_quad:false obj_tokens
    in
    if obj_quad <> [] then fail "quadratic objective not supported";
    if obj_rest <> [] then fail "trailing tokens after objective";
    let row_names = Hashtbl.create 16 in
    let rows =
      List.mapi
        (fun i line ->
          let toks = split_tokens line in
          let row_name, toks =
            match toks with
            | label :: rest
              when String.length label > 1
                   && label.[String.length label - 1] = ':' ->
              (String.sub label 0 (String.length label - 1), rest)
            | _ -> (Printf.sprintf "c%d" i, toks)
          in
          if Hashtbl.mem row_names row_name then
            fail "duplicate row %S" row_name;
          Hashtbl.replace row_names row_name ();
          let linear, quad, const, rest =
            parse_lp_expr ~allow_quad:true toks
          in
          let rel, rhs =
            match rest with
            | [ r; value ] when is_lp_rel r -> (lp_rel_of r, num_of value)
            | _ -> fail "missing relation in %S" line
          in
          {
            row_name;
            linear = List.map (fun (k, v) -> (k, var_index v)) linear;
            quad =
              List.map (fun (k, a, b) -> (k, var_index a, var_index b)) quad;
            rel;
            rhs = rhs -. const;
          })
        (List.rev !row_lines)
    in
    Ok
      {
        name = !name;
        vars;
        bounds;
        objective = List.map (fun (k, v) -> (k, var_index v)) obj_linear;
        obj_const;
        rows;
      }
  with Parse m -> Error m

let of_string_result text =
  let rec first_word i =
    if i >= String.length text then ""
    else
      match text.[i] with
      | ' ' | '\t' | '\n' | '\r' -> first_word (i + 1)
      | _ ->
        let j = ref i in
        while
          !j < String.length text
          &&
          match text.[!j] with ' ' | '\t' | '\n' | '\r' -> false | _ -> true
        do
          incr j
        done;
        String.sub text i (!j - i)
  in
  match String.uppercase_ascii (first_word 0) with
  | "NAME" | "ROWS" | "*" -> of_mps_result text
  | w when String.length w > 0 && w.[0] = '*' -> of_mps_result text
  | _ -> of_lp_result text

(* ---- model export ------------------------------------------------ *)

let sanitize_var raw =
  let s = if raw = "" then "v" else raw in
  let s =
    String.map
      (fun c ->
        match c with
        | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '.' -> c
        | _ -> '_')
      s
  in
  let s =
    match s.[0] with 'A' .. 'Z' | 'a' .. 'z' | '_' -> s | _ -> "v" ^ s
  in
  (* a name the LP lexer would read as a number or keyword is renamed *)
  if float_of_string_opt s <> None || String.lowercase_ascii s = "free" then
    "v_" ^ s
  else s

(* Expand e⊗e for an affine e = (terms, k): every ordered pair of
   terms contributes once (merge_quad folds (i,j)/(j,i) together),
   plus the 2k·cᵢxᵢ linear part and the k² constant. *)
let square_expr sign (terms, k) =
  let quad =
    List.concat_map
      (fun (ci, vi) ->
        List.map (fun (cj, vj) -> (sign *. ci *. cj, vi, vj)) terms)
      terms
  in
  let linear = List.map (fun (ci, vi) -> (sign *. 2.0 *. k *. ci, vi)) terms in
  (quad, linear, sign *. k *. k)

let of_model ?(name = "model") m =
  let snap = Model.snapshot m in
  let used = Hashtbl.create 16 in
  let vars =
    Array.map
      (fun raw ->
        let base = sanitize_var raw in
        let rec fresh cand k =
          if Hashtbl.mem used cand then
            fresh (Printf.sprintf "%s_%d" base k) (k + 1)
          else cand
        in
        let nm = fresh base 2 in
        Hashtbl.replace used nm ();
        nm)
      snap.Model.snap_vars
  in
  let bounds = Array.make (Array.length vars) Free in
  List.iter (fun (v, x) -> bounds.(v) <- Fixed x) snap.Model.snap_fixed;
  let next = ref 0 in
  let fresh_row () =
    let nm = Printf.sprintf "c%d" !next in
    incr next;
    nm
  in
  let rows =
    List.concat_map
      (function
        | `Nonneg (terms, k) ->
          if terms = [] then []
          else
            [
              {
                row_name = fresh_row ();
                linear = terms;
                quad = [];
                rel = Ge;
                rhs = -.k;
              };
            ]
        | `Soc [] -> []
        | `Soc ((head_terms, head_k) :: tail) ->
          (* ‖tail‖ ≤ head splits into the linear face head ≥ 0 and
             the quadratic face head² − Σ tailᵢ² ≥ 0 *)
          let head_row =
            if head_terms = [] then []
            else
              [
                {
                  row_name = fresh_row ();
                  linear = head_terms;
                  quad = [];
                  rel = Ge;
                  rhs = -.head_k;
                };
              ]
          in
          let quad, linear, const =
            List.fold_left
              (fun (q, l, c) e ->
                let q', l', c' = square_expr (-1.0) e in
                (q' @ q, l' @ l, c +. c'))
              (square_expr 1.0 (head_terms, head_k))
              tail
          in
          let quad_row =
            if merge_quad quad = [] && merge_linear linear = [] then []
            else
              [
                {
                  row_name = fresh_row ();
                  linear;
                  quad;
                  rel = Ge;
                  rhs = -.const;
                };
              ]
          in
          head_row @ quad_row)
      snap.Model.snap_rows
  in
  let obj_terms, obj_const = snap.Model.snap_objective in
  canon { name; vars; bounds; objective = obj_terms; obj_const; rows }
