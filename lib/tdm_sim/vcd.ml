module Config = Taskgraph.Config

(* VCD identifier codes: printable ASCII from '!' upward, skipping the
   characters that confuse parsers the least; short codes suffice for
   our signal counts. *)
let code i =
  let alphabet =
    "!#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
  in
  let base = String.length alphabet in
  let rec build i acc =
    let acc = String.make 1 alphabet.[i mod base] ^ acc in
    if i < base then acc else build ((i / base) - 1) acc
  in
  build i ""

let binary_of_int n =
  if n = 0 then "0"
  else begin
    let rec go n acc = if n = 0 then acc else go (n / 2) (string_of_int (n land 1) ^ acc) in
    go n ""
  end

type event = Task_on of int | Task_off of int | Buffer_delta of int * int

let dump ?(per_mcycle = 1000) cfg (mapped : Config.mapped)
    (report : Sim.report) ppf =
  if per_mcycle <= 0 then invalid_arg "Vcd.dump: per_mcycle must be > 0";
  let tasks = Config.all_tasks cfg and buffers = Config.all_buffers cfg in
  let task_code = Hashtbl.create 16 and buffer_code = Hashtbl.create 16 in
  List.iteri
    (fun i w -> Hashtbl.replace task_code (Config.task_id w) (code i))
    tasks;
  let ntasks = List.length tasks in
  List.iteri
    (fun i b ->
      Hashtbl.replace buffer_code (Config.buffer_id b) (code (ntasks + i)))
    buffers;
  (* Gather timed events. *)
  let events = ref [] in
  let push t e = events := (t, e) :: !events in
  List.iter
    (fun w ->
      let id = Config.task_id w in
      Array.iter
        (fun (claim, finish) ->
          push claim (Task_on id);
          push finish (Task_off id))
        (report.Sim.task_executions w))
    tasks;
  List.iter
    (fun b ->
      let bid = Config.buffer_id b in
      Array.iter
        (fun (claim, _) -> push claim (Buffer_delta (bid, 1)))
        (report.Sim.task_executions (Config.buffer_src cfg b));
      Array.iter
        (fun (_, finish) -> push finish (Buffer_delta (bid, -1)))
        (report.Sim.task_executions (Config.buffer_dst cfg b)))
    buffers;
  let ticks t = int_of_float (Float.round (t *. float_of_int per_mcycle)) in
  let sorted =
    List.stable_sort
      (fun (t1, _) (t2, _) -> compare (ticks t1) (ticks t2))
      (List.rev !events)
  in
  (* Header. *)
  Format.fprintf ppf "$comment budgetbuf TDM simulation trace $end@.";
  Format.fprintf ppf "$timescale 1ns $end@.";
  Format.fprintf ppf "$scope module budgetbuf $end@.";
  List.iter
    (fun w ->
      Format.fprintf ppf "$var wire 1 %s %s $end@."
        (Hashtbl.find task_code (Config.task_id w))
        (Config.task_name cfg w))
    tasks;
  List.iter
    (fun b ->
      Format.fprintf ppf "$var integer 32 %s %s $end@."
        (Hashtbl.find buffer_code (Config.buffer_id b))
        (Config.buffer_name cfg b))
    buffers;
  Format.fprintf ppf "$upscope $end@.$enddefinitions $end@.";
  (* Initial values: tasks idle; buffers at their initially-filled
     level (containers already unavailable to the producer). *)
  let fill = Hashtbl.create 16 in
  Format.fprintf ppf "$dumpvars@.";
  List.iter
    (fun w ->
      Format.fprintf ppf "0%s@." (Hashtbl.find task_code (Config.task_id w)))
    tasks;
  List.iter
    (fun b ->
      let iota = Config.initial_tokens cfg b in
      Hashtbl.replace fill (Config.buffer_id b) iota;
      Format.fprintf ppf "b%s %s@." (binary_of_int iota)
        (Hashtbl.find buffer_code (Config.buffer_id b)))
    buffers;
  Format.fprintf ppf "$end@.";
  ignore mapped;
  let current = ref (-1) in
  List.iter
    (fun (t, e) ->
      let tk = ticks t in
      if tk <> !current then begin
        Format.fprintf ppf "#%d@." tk;
        current := tk
      end;
      match e with
      | Task_on id -> Format.fprintf ppf "1%s@." (Hashtbl.find task_code id)
      | Task_off id -> Format.fprintf ppf "0%s@." (Hashtbl.find task_code id)
      | Buffer_delta (bid, d) ->
        let v = Hashtbl.find fill bid + d in
        Hashtbl.replace fill bid v;
        Format.fprintf ppf "b%s %s@." (binary_of_int (Int.max 0 v))
          (Hashtbl.find buffer_code bid))
    sorted
