(** Discrete-event simulation of task graphs under TDM budget
    schedulers.

    This is the repo's stand-in for the paper's multiprocessor
    platform: each processor serves its tasks time-division-multiplexed
    with a static window of [β(w)] cycles per replenishment interval
    [̺(p)] (overhead [o(p)] reserved at the start of each interval).  A
    task execution starts when every input buffer holds at least one
    filled container and every output buffer at least one empty one; it
    then claims both, processes its worst-case execution time [χ(w)]
    inside its TDM windows, and on completion publishes the produced
    container downstream and releases the consumed one upstream —
    exactly the synchronisation behaviour the paper's dataflow model
    conservatively bounds (Wiggers et al., EMSOFT 2009).

    Because the dataflow model is conservative, a mapping that admits a
    PAS with period [µ] must simulate at a measured steady-state period
    ≤ [µ]; the tests assert this. *)

type report = {
  task_period : Taskgraph.Config.task -> float;
      (** steady-state inter-completion time of the task (measured over
          the second half of the run) *)
  graph_period : Taskgraph.Config.graph -> float;
      (** the slowest task period of the graph *)
  task_completions : Taskgraph.Config.task -> float array;
      (** completion instant of every simulated execution *)
  task_executions : Taskgraph.Config.task -> (float * float) array;
      (** per execution: the instant the task claimed its containers
          (start of the waiting phase) and its completion instant *)
  buffer_high_water : Taskgraph.Config.buffer -> int;
      (** the largest number of containers simultaneously unavailable
          to the producer (filled or claimed); never exceeds the
          mapped capacity, and equals it when the buffer ever ran
          full *)
  buffer_high_water_steady : Taskgraph.Config.buffer -> int;
      (** same measure restricted to the second half of the run
          (instants ≥ makespan/2, including the occupancy carried into
          that window) — the steady-state high water, immune to
          startup transients such as draining a pile of initial
          tokens; always ≤ [buffer_high_water] *)
  makespan : float;  (** time of the last simulated completion *)
}

(** [run cfg mapped ~iterations ?execution_time ()] simulates until
    every task completed [iterations] executions.

    [execution_time] supplies the {e actual} processing time of each
    execution (arguments: the task and its 0-based execution index);
    it defaults to the worst case [χ(w)].  Values are clamped to
    [(0, χ(w)]] — the paper's model is conservative only for actual
    times at most the declared worst case.  Varying execution times
    exercise the temporal-monotonicity property budget schedulers
    guarantee (Wiggers et al., EMSOFT 2009): finishing early can never
    hurt downstream progress.

    @return [Error reason] on deadlock (no runnable task before the
    iteration target is met) or when a budget/capacity is invalid
    (non-positive budget, capacity below the initial tokens,
    oversubscribed processor).
    @raise Invalid_argument if [iterations < 4] (too short to measure a
    steady-state period). *)
val run :
  Taskgraph.Config.t ->
  Taskgraph.Config.mapped ->
  iterations:int ->
  ?execution_time:(Taskgraph.Config.task -> int -> float) ->
  unit ->
  (report, string) Stdlib.result

(** [processing_completion ~window_offset ~budget ~interval ~start
    ~work] is the instant at which [work] cycles of processing finish
    when started at [start] and served only inside the TDM window
    [[k·interval + window_offset, k·interval + window_offset + budget)]
    of every interval [k].  Exposed for direct unit testing. *)
val processing_completion :
  window_offset:float ->
  budget:float ->
  interval:float ->
  start:float ->
  work:float ->
  float
