module Config = Taskgraph.Config

type report = {
  task_period : Config.task -> float;
  graph_period : Config.graph -> float;
  task_completions : Config.task -> float array;
  task_executions : Config.task -> (float * float) array;
  buffer_high_water : Config.buffer -> int;
  buffer_high_water_steady : Config.buffer -> int;
  makespan : float;
}

let processing_completion ~window_offset ~budget ~interval ~start ~work =
  if budget <= 0.0 || interval <= 0.0 || budget > interval then
    invalid_arg "Sim.processing_completion: invalid window";
  if work < 0.0 then invalid_arg "Sim.processing_completion: negative work";
  let start = Float.max start 0.0 in
  if work <= 0.0 then start
  else begin
    (* Iterate the interval index explicitly: [k] strictly increases, so
       the loop terminates even when floating-point rounding makes
       [floor (t /. interval)] disagree with the index that produced
       [t]. *)
    (* Service can only begin at [max start wstart]; whatever fits
       before the window closes is consumed, the rest rolls over. *)
    let rec advance k remaining =
      let wstart = (k *. interval) +. window_offset in
      let wend = wstart +. budget in
      let begin_service = Float.max start wstart in
      let available = wend -. begin_service in
      if available <= 0.0 then advance (k +. 1.0) remaining
      else if remaining <= available then begin_service +. remaining
      else advance (k +. 1.0) (remaining -. available)
    in
    advance (Float.max 0.0 (floor (start /. interval) -. 1.0)) work
  end

(* Mutable per-entity simulation state. *)
type buffer_state = {
  mutable filled : int;  (** containers holding data, ready to consume *)
  mutable empty : int;   (** containers available to a producer *)
  capacity : int;
  mutable high_water : int;  (** max of capacity − empty seen so far *)
  initial_occ : int;  (** occupancy at time 0: the initial tokens *)
  mutable occ_log : (float * int) list;
      (** reversed (instant, occupancy) at every occupancy change *)
}

type task_state = {
  mutable fired : int;        (** completed executions *)
  mutable busy : bool;
  mutable completions : float list;  (** reversed *)
  mutable claim_times : float list;  (** reversed; parallel to completions *)
  window_offset : float;
  budget : float;
  interval : float;
  wcet : float;
  inputs : int list;   (** buffer ids consumed from *)
  outputs : int list;  (** buffer ids produced into *)
}

let run cfg (mapped : Config.mapped) ~iterations ?execution_time () =
  if iterations < 4 then invalid_arg "Sim.run: iterations must be >= 4";
  let tasks = Config.all_tasks cfg in
  let buffers = Config.all_buffers cfg in
  (* Static window layout per processor: overhead first, then one window
     per task in declaration order. *)
  let offsets = Hashtbl.create 16 in
  let layout_errors = ref [] in
  List.iter
    (fun p ->
      let cursor = ref (Config.overhead cfg p) in
      List.iter
        (fun w ->
          Hashtbl.replace offsets (Config.task_id w) !cursor;
          cursor := !cursor +. mapped.Config.budget w)
        (Config.tasks_on cfg p);
      if !cursor > Config.replenishment cfg p +. 1e-9 then
        layout_errors :=
          Printf.sprintf "processor %s oversubscribed: %g > %g"
            (Config.proc_name cfg p) !cursor
            (Config.replenishment cfg p)
          :: !layout_errors)
    (Config.processors cfg);
  let buffer_states =
    List.map
      (fun b ->
        let cap = mapped.Config.capacity b in
        let iota = Config.initial_tokens cfg b in
        if cap < Int.max 1 iota then
          layout_errors :=
            Printf.sprintf "buffer %s: invalid capacity %d"
              (Config.buffer_name cfg b) cap
            :: !layout_errors;
        ( Config.buffer_id b,
          {
            filled = iota;
            empty = cap - iota;
            capacity = cap;
            high_water = iota;
            initial_occ = iota;
            occ_log = [];
          } ))
      buffers
  in
  let task_states =
    List.map
      (fun w ->
        let beta = mapped.Config.budget w in
        let p = Config.task_proc cfg w in
        if beta <= 0.0 then
          layout_errors :=
            Printf.sprintf "task %s: non-positive budget"
              (Config.task_name cfg w)
            :: !layout_errors;
        ( Config.task_id w,
          {
            fired = 0;
            busy = false;
            completions = [];
            claim_times = [];
            window_offset =
              (try Hashtbl.find offsets (Config.task_id w) with Not_found -> 0.0);
            budget = beta;
            interval = Config.replenishment cfg p;
            wcet = Config.wcet cfg w;
            inputs =
              List.filter_map
                (fun b ->
                  if Config.buffer_dst cfg b = w then
                    Some (Config.buffer_id b)
                  else None)
                buffers;
            outputs =
              List.filter_map
                (fun b ->
                  if Config.buffer_src cfg b = w then
                    Some (Config.buffer_id b)
                  else None)
                buffers;
          } ))
      tasks
  in
  match !layout_errors with
  | _ :: _ as errs -> Error (String.concat "; " errs)
  | [] ->
    let bstate id = List.assoc id buffer_states in
    let tstate id = List.assoc id task_states in
    let consumers = Hashtbl.create 16 and producers = Hashtbl.create 16 in
    List.iter
      (fun b ->
        Hashtbl.replace consumers (Config.buffer_id b)
          (Config.task_id (Config.buffer_dst cfg b));
        Hashtbl.replace producers (Config.buffer_id b)
          (Config.task_id (Config.buffer_src cfg b)))
      buffers;
    let events = Heap.create () in
    let makespan = ref 0.0 in
    (* Try to start an execution of the task at time [now]; claims one
       filled container on each input and one empty container on each
       output, then schedules the completion event. *)
    let try_start now id =
      let st = tstate id in
      if (not st.busy) && st.fired < iterations then begin
        let ready =
          List.for_all (fun b -> (bstate b).filled >= 1) st.inputs
          && List.for_all (fun b -> (bstate b).empty >= 1) st.outputs
        in
        if ready then begin
          List.iter (fun b -> (bstate b).filled <- (bstate b).filled - 1) st.inputs;
          List.iter
            (fun b ->
              let bs = bstate b in
              bs.empty <- bs.empty - 1;
              if bs.capacity - bs.empty > bs.high_water then
                bs.high_water <- bs.capacity - bs.empty;
              bs.occ_log <- (now, bs.capacity - bs.empty) :: bs.occ_log)
            st.outputs;
          st.busy <- true;
          st.claim_times <- now :: st.claim_times;
          let work =
            match execution_time with
            | None -> st.wcet
            | Some f ->
              (* Clamp into (0, χ]: the model is only conservative for
                 actual times at most the declared worst case. *)
              Float.min st.wcet
                (Float.max 1e-9 (f (Config.task_of_id cfg id) st.fired))
          in
          let finish =
            processing_completion ~window_offset:st.window_offset
              ~budget:st.budget ~interval:st.interval ~start:now ~work
          in
          Heap.push events finish id
        end
      end
    in
    List.iter (fun (id, _) -> try_start 0.0 id) task_states;
    let rec drain () =
      match Heap.pop events with
      | None -> ()
      | Some (now, id) ->
        let st = tstate id in
        st.busy <- false;
        st.fired <- st.fired + 1;
        st.completions <- now :: st.completions;
        if now > !makespan then makespan := now;
        (* Produced data wakes consumers; released space wakes
           producers. *)
        List.iter
          (fun b ->
            (bstate b).filled <- (bstate b).filled + 1;
            try_start now (Hashtbl.find consumers b))
          st.outputs;
        List.iter
          (fun b ->
            let bs = bstate b in
            bs.empty <- bs.empty + 1;
            bs.occ_log <- (now, bs.capacity - bs.empty) :: bs.occ_log;
            try_start now (Hashtbl.find producers b))
          st.inputs;
        try_start now id;
        drain ()
    in
    drain ();
    let unfinished =
      List.filter (fun (_, st) -> st.fired < iterations) task_states
    in
    if unfinished <> [] then
      Error
        (Printf.sprintf "deadlock: %d task(s) stalled before reaching %d \
                         executions"
           (List.length unfinished) iterations)
    else begin
      let completion_arrays =
        List.map
          (fun (id, st) ->
            (id, Array.of_list (List.rev st.completions)))
          task_states
      in
      let execution_arrays =
        List.map
          (fun (id, st) ->
            let claims = Array.of_list (List.rev st.claim_times)
            and ends = Array.of_list (List.rev st.completions) in
            (id, Array.init (Array.length ends) (fun i -> (claims.(i), ends.(i)))))
          task_states
      in
      let task_period w =
        let arr = List.assoc (Config.task_id w) completion_arrays in
        let n = Array.length arr in
        let k1 = n / 2 and k2 = n - 1 in
        (arr.(k2) -. arr.(k1)) /. float_of_int (k2 - k1)
      in
      Ok
        {
          task_period;
          graph_period =
            (fun g ->
              List.fold_left
                (fun acc w -> Float.max acc (task_period w))
                0.0 (Config.tasks cfg g));
          task_completions =
            (fun w -> List.assoc (Config.task_id w) completion_arrays);
          task_executions =
            (fun w -> List.assoc (Config.task_id w) execution_arrays);
          buffer_high_water =
            (fun b -> (bstate (Config.buffer_id b)).high_water);
          buffer_high_water_steady =
            (fun b ->
              (* Max occupancy over the second half of the run.  The
                 occupancy carried into the window counts: [current]
                 is folded into the max both at the first in-window
                 change and at the end of the log (a buffer whose
                 occupancy never changes after the midpoint still
                 holds [current] containers throughout). *)
              let bs = bstate (Config.buffer_id b) in
              let half = !makespan /. 2.0 in
              let rec go current best = function
                | [] -> Int.max best current
                | (t, occ) :: rest ->
                  if t >= half then
                    go occ (Int.max (Int.max best current) occ) rest
                  else go occ best rest
              in
              go bs.initial_occ min_int (List.rev bs.occ_log));
          makespan = !makespan;
        }
    end
