(** Value-change-dump (VCD, IEEE 1364) export of a simulation run.

    Emits one 1-bit signal per task ([1] while an execution is between
    its claim and completion instants) and one integer signal per
    buffer (containers unavailable to the producer over time), so any
    waveform viewer (GTKWave & co.) can display the TDM schedule and
    buffer occupancy of a mapped system — the debugging view an EDA
    engineer expects.

    Time is emitted in nanoseconds at a caller-chosen resolution:
    simulation instants (Mcycles, floats) are scaled by [per_mcycle]
    (default 1000) and rounded. *)

(** [dump cfg mapped report ppf] writes a VCD document for the
    [iterations] recorded in [report].  Buffer fill levels are
    reconstructed from the execution intervals: a producer claims a
    container at its claim instant and the consumer frees it at its
    completion instant.
    @param per_mcycle VCD time units per Mcycle (default 1000). *)
val dump :
  ?per_mcycle:int ->
  Taskgraph.Config.t ->
  Taskgraph.Config.mapped ->
  Sim.report ->
  Format.formatter ->
  unit
