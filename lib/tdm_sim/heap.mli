(** Mutable binary min-heap keyed by floats, used as the event queue of
    the discrete-event simulator.  Ties are broken by insertion order,
    which keeps event processing deterministic. *)

type 'a t

(** [create ()] is an empty heap. *)
val create : unit -> 'a t

(** [is_empty h] is true when the heap holds no elements. *)
val is_empty : 'a t -> bool

(** [size h] is the number of stored elements. *)
val size : 'a t -> int

(** [push h key v] inserts [v] with priority [key]. *)
val push : 'a t -> float -> 'a -> unit

(** [pop h] removes and returns the minimum-key element (earliest
    insertion first among equal keys). *)
val pop : 'a t -> (float * 'a) option

(** [peek h] returns the minimum without removing it. *)
val peek : 'a t -> (float * 'a) option
