(* The event vocabulary and its line codec.

   One event is one flat JSON object on one line:

     {"seq":12,"t":0.0312,"ev":"socp_iter","iter":4,"pres":...}

   Floats render with "%.17g", which [float_of_string] parses back
   bit-exactly (17 significant digits pin a binary64); the non-finite
   values JSON cannot spell are quoted ("nan", "inf", "-inf") and the
   decoder accepts both spellings.  The decoder is a tiny parser for
   exactly this shape — flat objects of strings, numbers and booleans —
   not a general JSON library; anything else is rejected as damage. *)

type event =
  | Solve_start of { rows : int; cols : int }
  | Solve_end of { status : string; iterations : int; time_s : float }
  | Socp_iter of {
      iter : int;
      pres : float;
      dres : float;
      gap : float;
      step : float;
    }
  | Presolve of { range_before : float; range_after : float }
  | Rung_enter of { attempt : int; stage : string }
  | Rung_exit of {
      attempt : int;
      stage : string;
      status : string;
      fault : string option;
    }
  | Fault_injected of { kind : string; attempt : int }
  | Kkt_factor of { backend : string; phase : string; n : int; nnz : int }
  | Warm_start of { accepted : bool; reason : string }
  | Certificate of { verdict : string }
  | Restore of { index : int; hit : bool }
  | Task_dispatch of { index : int }
  | Task_join of { index : int; ok : bool }
  | Candidate of { index : int; verdict : string }
  | Request_start of { op : string; id : string }
  | Request_done of {
      op : string;
      id : string;
      status : string;
      queue_s : float;
      total_s : float;
    }
  | Cache_hit of { key : string }
  | Cache_miss of { key : string }
  | Shed of { queue : int }
  | Chaos_injected of { kind : string; site : string; ordinal : int }
  | Worker_spawn of { pid : int; slot : int }
  | Worker_exit of { pid : int; reason : string; solves : int }
  | Worker_reaped of { pid : int; after_s : float }
  | Quarantined of { key : string; crashes : int }
  | Tighten_probe of { buffer : string; capacity : int; feasible : bool }
  | Tighten_accept of { buffer : string; capacity : int; saved : int }
  | Tighten_reject of { buffer : string; capacity : int }
  | Span_open of { name : string }
  | Span_close of { name : string; elapsed_s : float }

type t = { seq : int; time : float; event : event }

let event_name = function
  | Solve_start _ -> "solve_start"
  | Solve_end _ -> "solve_end"
  | Socp_iter _ -> "socp_iter"
  | Presolve _ -> "presolve"
  | Rung_enter _ -> "rung_enter"
  | Rung_exit _ -> "rung_exit"
  | Fault_injected _ -> "fault_injected"
  | Kkt_factor _ -> "kkt_factor"
  | Warm_start _ -> "warm_start"
  | Certificate _ -> "certificate"
  | Restore _ -> "restore"
  | Task_dispatch _ -> "task_dispatch"
  | Task_join _ -> "task_join"
  | Candidate _ -> "candidate"
  | Request_start _ -> "request_start"
  | Request_done _ -> "request_done"
  | Cache_hit _ -> "cache_hit"
  | Cache_miss _ -> "cache_miss"
  | Shed _ -> "shed"
  | Chaos_injected _ -> "chaos_injected"
  | Worker_spawn _ -> "worker_spawn"
  | Worker_exit _ -> "worker_exit"
  | Worker_reaped _ -> "worker_reaped"
  | Quarantined _ -> "quarantined"
  | Tighten_probe _ -> "tighten_probe"
  | Tighten_accept _ -> "tighten_accept"
  | Tighten_reject _ -> "tighten_reject"
  | Span_open _ -> "span_open"
  | Span_close _ -> "span_close"

(* ---- encoding ---------------------------------------------------- *)

let add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_float b f =
  if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.17g" f)
  else
    add_json_string b
      (if Float.is_nan f then "nan" else if f > 0.0 then "inf" else "-inf")

type field = S of string | N of float | I of int | B of bool

let fields_of_event = function
  | Solve_start { rows; cols } -> [ ("rows", I rows); ("cols", I cols) ]
  | Solve_end { status; iterations; time_s } ->
    [ ("status", S status); ("iterations", I iterations); ("time_s", N time_s) ]
  | Socp_iter { iter; pres; dres; gap; step } ->
    [
      ("iter", I iter);
      ("pres", N pres);
      ("dres", N dres);
      ("gap", N gap);
      ("step", N step);
    ]
  | Presolve { range_before; range_after } ->
    [ ("range_before", N range_before); ("range_after", N range_after) ]
  | Rung_enter { attempt; stage } ->
    [ ("attempt", I attempt); ("stage", S stage) ]
  | Rung_exit { attempt; stage; status; fault } ->
    [ ("attempt", I attempt); ("stage", S stage); ("status", S status) ]
    @ (match fault with None -> [] | Some f -> [ ("fault", S f) ])
  | Fault_injected { kind; attempt } ->
    [ ("kind", S kind); ("attempt", I attempt) ]
  | Kkt_factor { backend; phase; n; nnz } ->
    [ ("backend", S backend); ("phase", S phase); ("n", I n); ("nnz", I nnz) ]
  | Warm_start { accepted; reason } ->
    [ ("accepted", B accepted); ("reason", S reason) ]
  | Certificate { verdict } -> [ ("verdict", S verdict) ]
  | Restore { index; hit } -> [ ("index", I index); ("hit", B hit) ]
  | Task_dispatch { index } -> [ ("index", I index) ]
  | Task_join { index; ok } -> [ ("index", I index); ("ok", B ok) ]
  | Candidate { index; verdict } ->
    [ ("index", I index); ("verdict", S verdict) ]
  | Request_start { op; id } -> [ ("op", S op); ("id", S id) ]
  | Request_done { op; id; status; queue_s; total_s } ->
    [
      ("op", S op);
      ("id", S id);
      ("status", S status);
      ("queue_s", N queue_s);
      ("total_s", N total_s);
    ]
  | Cache_hit { key } -> [ ("key", S key) ]
  | Cache_miss { key } -> [ ("key", S key) ]
  | Shed { queue } -> [ ("queue", I queue) ]
  | Chaos_injected { kind; site; ordinal } ->
    [ ("kind", S kind); ("site", S site); ("ordinal", I ordinal) ]
  | Worker_spawn { pid; slot } -> [ ("pid", I pid); ("slot", I slot) ]
  | Worker_exit { pid; reason; solves } ->
    [ ("pid", I pid); ("reason", S reason); ("solves", I solves) ]
  | Worker_reaped { pid; after_s } ->
    [ ("pid", I pid); ("after_s", N after_s) ]
  | Quarantined { key; crashes } ->
    [ ("key", S key); ("crashes", I crashes) ]
  | Tighten_probe { buffer; capacity; feasible } ->
    [ ("buffer", S buffer); ("capacity", I capacity); ("feasible", B feasible) ]
  | Tighten_accept { buffer; capacity; saved } ->
    [ ("buffer", S buffer); ("capacity", I capacity); ("saved", I saved) ]
  | Tighten_reject { buffer; capacity } ->
    [ ("buffer", S buffer); ("capacity", I capacity) ]
  | Span_open { name } -> [ ("name", S name) ]
  | Span_close { name; elapsed_s } ->
    [ ("name", S name); ("elapsed_s", N elapsed_s) ]

let to_json { seq; time; event } =
  let b = Buffer.create 96 in
  Buffer.add_string b "{\"seq\":";
  Buffer.add_string b (string_of_int seq);
  Buffer.add_string b ",\"t\":";
  add_float b time;
  Buffer.add_string b ",\"ev\":";
  add_json_string b (event_name event);
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ',';
      add_json_string b k;
      Buffer.add_char b ':';
      match v with
      | S s -> add_json_string b s
      | N f -> add_float b f
      | I i -> Buffer.add_string b (string_of_int i)
      | B v -> Buffer.add_string b (if v then "true" else "false"))
    (fields_of_event event);
  Buffer.add_char b '}';
  Buffer.contents b

(* One-line human rendering for `budgetbuf trace cat`.  The timestamp
   is deliberately omitted — it is the one nondeterministic column, and
   leaving it out keeps golden cram output stable. *)
let summary { seq; event; _ } =
  let b = Buffer.create 64 in
  Buffer.add_string b (string_of_int seq);
  Buffer.add_char b ' ';
  Buffer.add_string b (event_name event);
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ' ';
      Buffer.add_string b k;
      Buffer.add_char b '=';
      match v with
      | S s -> Buffer.add_string b s
      | N f -> add_float b f
      | I i -> Buffer.add_string b (string_of_int i)
      | B v -> Buffer.add_string b (if v then "true" else "false"))
    (fields_of_event event);
  Buffer.contents b

(* ---- decoding ---------------------------------------------------- *)

type json = Jstr of string | Jnum of float | Jbool of bool

exception Bad

let parse_object line =
  let len = String.length line in
  let pos = ref 0 in
  let peek () = if !pos >= len then raise Bad else line.[!pos] in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < len && (match line.[!pos] with ' ' | '\t' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c = if peek () <> c then raise Bad else advance () in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
          if !pos + 4 >= len then raise Bad;
          let hex = String.sub line (!pos + 1) 4 in
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c when c < 0x80 -> c
            | Some _ | None -> raise Bad
          in
          pos := !pos + 4;
          Buffer.add_char b (Char.chr code)
        | _ -> raise Bad);
        advance ();
        go ()
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> Jstr (parse_string ())
    | 't' ->
      if !pos + 4 <= len && String.sub line !pos 4 = "true" then begin
        pos := !pos + 4;
        Jbool true
      end
      else raise Bad
    | 'f' ->
      if !pos + 5 <= len && String.sub line !pos 5 = "false" then begin
        pos := !pos + 5;
        Jbool false
      end
      else raise Bad
    | '-' | '0' .. '9' ->
      let start = !pos in
      while
        !pos < len
        &&
        match line.[!pos] with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      do
        advance ()
      done;
      (match float_of_string_opt (String.sub line start (!pos - start)) with
      | Some f -> Jnum f
      | None -> raise Bad)
    | _ -> raise Bad
  in
  skip_ws ();
  expect '{';
  let rec pairs acc =
    skip_ws ();
    match peek () with
    | '}' ->
      advance ();
      List.rev acc
    | _ ->
      let k = parse_string () in
      skip_ws ();
      expect ':';
      let v = parse_value () in
      skip_ws ();
      (match peek () with
      | ',' ->
        advance ();
        pairs ((k, v) :: acc)
      | '}' ->
        advance ();
        List.rev ((k, v) :: acc)
      | _ -> raise Bad)
  in
  let obj = pairs [] in
  skip_ws ();
  if !pos <> len then raise Bad;
  obj

let of_json_line line =
  match
    let obj = parse_object line in
    let str k =
      match List.assoc_opt k obj with Some (Jstr s) -> s | _ -> raise Bad
    in
    let num k =
      match List.assoc_opt k obj with
      | Some (Jnum f) -> f
      | Some (Jstr "nan") -> Float.nan
      | Some (Jstr "inf") -> Float.infinity
      | Some (Jstr "-inf") -> Float.neg_infinity
      | _ -> raise Bad
    in
    let int k =
      let f = num k in
      let i = int_of_float f in
      if float_of_int i = f then i else raise Bad
    in
    let boolean k =
      match List.assoc_opt k obj with Some (Jbool v) -> v | _ -> raise Bad
    in
    let event =
      match str "ev" with
      | "solve_start" -> Solve_start { rows = int "rows"; cols = int "cols" }
      | "solve_end" ->
        Solve_end
          {
            status = str "status";
            iterations = int "iterations";
            time_s = num "time_s";
          }
      | "socp_iter" ->
        Socp_iter
          {
            iter = int "iter";
            pres = num "pres";
            dres = num "dres";
            gap = num "gap";
            step = num "step";
          }
      | "presolve" ->
        Presolve
          { range_before = num "range_before"; range_after = num "range_after" }
      | "rung_enter" ->
        Rung_enter { attempt = int "attempt"; stage = str "stage" }
      | "rung_exit" ->
        Rung_exit
          {
            attempt = int "attempt";
            stage = str "stage";
            status = str "status";
            fault =
              (match List.assoc_opt "fault" obj with
              | Some (Jstr s) -> Some s
              | None -> None
              | Some _ -> raise Bad);
          }
      | "fault_injected" ->
        Fault_injected { kind = str "kind"; attempt = int "attempt" }
      | "kkt_factor" ->
        Kkt_factor
          {
            backend = str "backend";
            phase = str "phase";
            n = int "n";
            nnz = int "nnz";
          }
      | "warm_start" ->
        Warm_start { accepted = boolean "accepted"; reason = str "reason" }
      | "certificate" -> Certificate { verdict = str "verdict" }
      | "restore" -> Restore { index = int "index"; hit = boolean "hit" }
      | "task_dispatch" -> Task_dispatch { index = int "index" }
      | "task_join" -> Task_join { index = int "index"; ok = boolean "ok" }
      | "candidate" ->
        Candidate { index = int "index"; verdict = str "verdict" }
      | "request_start" -> Request_start { op = str "op"; id = str "id" }
      | "request_done" ->
        Request_done
          {
            op = str "op";
            id = str "id";
            status = str "status";
            queue_s = num "queue_s";
            total_s = num "total_s";
          }
      | "cache_hit" -> Cache_hit { key = str "key" }
      | "cache_miss" -> Cache_miss { key = str "key" }
      | "shed" -> Shed { queue = int "queue" }
      | "chaos_injected" ->
        Chaos_injected
          { kind = str "kind"; site = str "site"; ordinal = int "ordinal" }
      | "worker_spawn" -> Worker_spawn { pid = int "pid"; slot = int "slot" }
      | "worker_exit" ->
        Worker_exit
          { pid = int "pid"; reason = str "reason"; solves = int "solves" }
      | "worker_reaped" ->
        Worker_reaped { pid = int "pid"; after_s = num "after_s" }
      | "quarantined" ->
        Quarantined { key = str "key"; crashes = int "crashes" }
      | "tighten_probe" ->
        Tighten_probe
          {
            buffer = str "buffer";
            capacity = int "capacity";
            feasible = boolean "feasible";
          }
      | "tighten_accept" ->
        Tighten_accept
          { buffer = str "buffer"; capacity = int "capacity"; saved = int "saved" }
      | "tighten_reject" ->
        Tighten_reject { buffer = str "buffer"; capacity = int "capacity" }
      | "span_open" -> Span_open { name = str "name" }
      | "span_close" ->
        Span_close { name = str "name"; elapsed_s = num "elapsed_s" }
      | _ -> raise Bad
    in
    { seq = int "seq"; time = num "t"; event }
  with
  | t -> Some t
  | exception Bad -> None
