(* Pluggable trace consumers.

   The file sink uses the same line framing as the sweep journal
   (lib/durable/journal.ml): every line is

     <crc32-hex> <body>

   with the CRC covering everything after the single separating space,
   preceded by a header line whose body is "budgetbuf-trace 1".  Unlike
   the journal there is no fsync per record — a trace is diagnostic,
   not durable state — so writes go through a buffered channel and a
   crash can tear the tail, which the reader detects (bad CRC, bad
   JSON or missing newline) and truncates away, exactly like a torn
   journal. *)

let magic = "budgetbuf-trace"
let version = "1"

let render_line body = Crc.hex (Crc.string body) ^ " " ^ body ^ "\n"

(* [line] has no trailing newline.  [None] on any damage: too short,
   missing separator, CRC mismatch. *)
let body_of_line line =
  if String.length line < 10 || line.[8] <> ' ' then None
  else
    let crc = String.sub line 0 8 in
    let body = String.sub line 9 (String.length line - 9) in
    if String.equal crc (Crc.hex (Crc.string body)) then Some body else None

type t =
  | Null
  | Ring of { capacity : int; q : Trace.t Queue.t; m : Mutex.t }
  | File of {
      path : string;
      oc : out_channel;
      m : Mutex.t;
      mutable closed : bool;
    }

let null = Null

let ring ~capacity =
  if capacity < 1 then invalid_arg "Obs.Sink.ring: capacity must be >= 1";
  Ring { capacity; q = Queue.create (); m = Mutex.create () }

let file path =
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 path in
  output_string oc (render_line (magic ^ " " ^ version));
  File { path; oc; m = Mutex.create (); closed = false }

let emit t ev =
  match t with
  | Null -> ()
  | Ring r ->
    Mutex.lock r.m;
    Queue.push ev r.q;
    while Queue.length r.q > r.capacity do
      ignore (Queue.pop r.q)
    done;
    Mutex.unlock r.m
  | File f ->
    Mutex.lock f.m;
    if not f.closed then output_string f.oc (render_line (Trace.to_json ev));
    Mutex.unlock f.m

let events = function
  | Ring r ->
    Mutex.lock r.m;
    let evs = List.of_seq (Queue.to_seq r.q) in
    Mutex.unlock r.m;
    evs
  | Null | File _ -> []

let path = function File f -> Some f.path | Null | Ring _ -> None

let close = function
  | Null | Ring _ -> ()
  | File f ->
    Mutex.lock f.m;
    if not f.closed then begin
      f.closed <- true;
      close_out f.oc
    end;
    Mutex.unlock f.m

(* Newline-terminated lines; an unterminated tail chunk is torn by
   definition and not returned (same discipline as Journal.scan_lines). *)
let scan_lines content =
  let len = String.length content in
  let rec scan pos acc =
    if pos >= len then List.rev acc
    else
      match String.index_from_opt content pos '\n' with
      | None -> List.rev acc
      | Some nl -> scan (nl + 1) (String.sub content pos (nl - pos) :: acc)
  in
  scan 0 []

let read_file p =
  match In_channel.with_open_bin p In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | content -> begin
    match scan_lines content with
    | [] -> Error (p ^ ": empty or truncated trace header")
    | first :: rest -> begin
      match body_of_line first with
      | Some body when String.equal body (magic ^ " " ^ version) ->
        (* Stop at the first damaged line: after a torn write nothing
           downstream is trustworthy. *)
        let rec take acc = function
          | [] -> List.rev acc
          | line :: rest -> begin
            match Option.bind (body_of_line line) Trace.of_json_line with
            | Some ev -> take (ev :: acc) rest
            | None -> List.rev acc
          end
        in
        Ok (take [] rest)
      | Some _ | None ->
        Error (p ^ ": not a budgetbuf trace (bad or corrupt header)")
    end
  end
