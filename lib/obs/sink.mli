(** Pluggable trace consumers.

    - {!null}: discards events — the default, near-zero overhead.
    - {!ring}: keeps the last [capacity] events in memory, evicting the
      oldest; what the deterministic trace tests read back.
    - {!file}: a CRC'd append-only JSONL file with the same line
      framing as the sweep journal ([Durable.Journal]) but without the
      per-record fsync — a trace is diagnostic, not durable state.  A
      torn tail is detected and dropped on read. *)

type t

(** The sink that discards everything. *)
val null : t

(** [ring ~capacity] keeps the most recent [capacity] events.
    @raise Invalid_argument if [capacity < 1]. *)
val ring : capacity:int -> t

(** [file path] creates (or truncates) [path] and writes the trace
    header.  Raises [Sys_error] when the path is not writable — the
    CLI surfaces that as a clean flag-validation error. *)
val file : string -> t

(** [emit t ev] delivers one stamped event.  Thread-safe. *)
val emit : t -> Trace.t -> unit

(** [events t] is the ring contents, oldest first; [[]] for the other
    sinks. *)
val events : t -> Trace.t list

(** [path t] is the file sink's path. *)
val path : t -> string option

(** [close t] flushes and closes a file sink.  Idempotent; a no-op for
    the other sinks.  Emitting after close is silently dropped. *)
val close : t -> unit

(** [read_file path] decodes a trace file back into events, dropping a
    torn or corrupt tail (bad CRC, bad JSON, unterminated line) —
    everything before the first damaged line is returned.  [Error] when
    the file is unreadable or its header is not a budgetbuf trace. *)
val read_file : string -> (Trace.t list, string) result
