(** The observability context: what [?obs] threads through the stack.

    One context owns a {!Sink}, a monotone sequence counter and the
    aggregate metrics behind the CLI's [--metrics] table.  {!emit}
    folds an event into the metrics and — unless the sink is
    {!Sink.null} — stamps and forwards it; an absent context
    ([obs = None]) costs nothing at all, which is what keeps the
    instrumented hot paths overhead-free by default
    (docs/observability.md records the measured overheads). *)

type t

(** [make ?sink ()] builds a context over [sink] (default
    {!Sink.null}: metrics only, no trace). *)
val make : ?sink:Sink.t -> unit -> t

(** [sink t] is the sink the context was built over. *)
val sink : t -> Sink.t

(** [emit t event] updates the metrics and forwards the stamped event
    to the sink.  Thread-safe from any domain; sequence numbers are
    allocated atomically, but two domains' events may reach a file
    sink out of sequence order — readers sort by [seq] when order
    matters. *)
val emit : t -> Trace.event -> unit

(** [with_span obs name f] runs [f] inside a timed span: a
    [Span_open] before, a [Span_close] (with the {!Clock} elapsed
    time) after — emitted on every exit path.  [with_span None name f]
    is exactly [f ()]. *)
val with_span : t option -> string -> (unit -> 'a) -> 'a

(** [report t] renders the metrics table, one line per populated
    section: solves and iterations, the recovery-rung histogram,
    injected faults, certificate verdicts, candidate verdicts, journal
    restores, pool dispatch/join counts, solve-time totals and
    per-phase wall-clock.  Keyed sections render in sorted key order
    and empty sections are omitted, so the table is deterministic up
    to the wall-clock lines (prefixed ["solve time"] / ["phase "], so
    goldens can filter them). *)
val report : t -> string list
