(* The observability context threaded through the stack as [?obs].

   [emit] does two things: it folds the event into the aggregate
   metrics (the [--metrics] table), and — unless the sink is null — it
   stamps the event with a sequence number and a clock reading and
   hands it to the sink.  The metrics side uses the lock-free
   per-domain cells of [Metrics] for the counters every solve touches;
   the low-rate keyed tallies (rung histogram, candidate verdicts,
   span totals — a handful of events per solve, not per iteration) go
   through one small mutex-guarded table. *)

type t = {
  sink : Sink.t;
  seq : int Atomic.t;
  solves : Metrics.Counter.t;
  iterations : Metrics.Counter.t;
  restore_hits : Metrics.Counter.t;
  restore_misses : Metrics.Counter.t;
  dispatched : Metrics.Counter.t;
  joined : Metrics.Counter.t;
  cache_hits : Metrics.Counter.t;
  cache_misses : Metrics.Counter.t;
  sheds : Metrics.Counter.t;
  solve_time : Metrics.Histogram.t;
  keyed_mutex : Mutex.t;
  rungs : (string, int ref) Hashtbl.t;
  certificates : (string, int ref) Hashtbl.t;
  candidates : (string, int ref) Hashtbl.t;
  tighten : (string, int ref) Hashtbl.t;
  faults : (string, int ref) Hashtbl.t;
  requests : (string, int ref) Hashtbl.t;
  workers : (string, int ref) Hashtbl.t;
  phases : (string, float ref) Hashtbl.t;
}

let make ?(sink = Sink.null) () =
  {
    sink;
    seq = Atomic.make 0;
    solves = Metrics.Counter.make ();
    iterations = Metrics.Counter.make ();
    restore_hits = Metrics.Counter.make ();
    restore_misses = Metrics.Counter.make ();
    dispatched = Metrics.Counter.make ();
    joined = Metrics.Counter.make ();
    cache_hits = Metrics.Counter.make ();
    cache_misses = Metrics.Counter.make ();
    sheds = Metrics.Counter.make ();
    solve_time = Metrics.Histogram.make ();
    keyed_mutex = Mutex.create ();
    rungs = Hashtbl.create 8;
    certificates = Hashtbl.create 4;
    candidates = Hashtbl.create 8;
    tighten = Hashtbl.create 4;
    faults = Hashtbl.create 4;
    requests = Hashtbl.create 8;
    workers = Hashtbl.create 4;
    phases = Hashtbl.create 8;
  }

let sink t = t.sink

let bump_keyed t table key =
  Mutex.lock t.keyed_mutex;
  (match Hashtbl.find_opt table key with
  | Some r -> incr r
  | None -> Hashtbl.add table key (ref 1));
  Mutex.unlock t.keyed_mutex

let add_phase t name elapsed =
  Mutex.lock t.keyed_mutex;
  (match Hashtbl.find_opt t.phases name with
  | Some r -> r := !r +. elapsed
  | None -> Hashtbl.add t.phases name (ref elapsed));
  Mutex.unlock t.keyed_mutex

let emit t event =
  (match event with
  | Trace.Solve_end { iterations; time_s; _ } ->
    Metrics.Counter.incr t.solves;
    Metrics.Counter.incr ~by:iterations t.iterations;
    Metrics.Histogram.observe t.solve_time time_s
  | Trace.Rung_enter { stage; _ } -> bump_keyed t t.rungs stage
  | Trace.Fault_injected { kind; _ } -> bump_keyed t t.faults kind
  | Trace.Certificate { verdict } -> bump_keyed t t.certificates verdict
  | Trace.Candidate { verdict; _ } -> bump_keyed t t.candidates verdict
  | Trace.Tighten_probe _ -> bump_keyed t t.tighten "probe"
  | Trace.Tighten_accept _ -> bump_keyed t t.tighten "accept"
  | Trace.Tighten_reject _ -> bump_keyed t t.tighten "reject"
  | Trace.Restore { hit; _ } ->
    Metrics.Counter.incr (if hit then t.restore_hits else t.restore_misses)
  | Trace.Task_dispatch _ -> Metrics.Counter.incr t.dispatched
  | Trace.Task_join _ -> Metrics.Counter.incr t.joined
  | Trace.Request_done { status; _ } -> bump_keyed t t.requests status
  | Trace.Cache_hit _ -> Metrics.Counter.incr t.cache_hits
  | Trace.Cache_miss _ -> Metrics.Counter.incr t.cache_misses
  | Trace.Shed _ -> Metrics.Counter.incr t.sheds
  | Trace.Chaos_injected { kind; _ } -> bump_keyed t t.faults ("chaos:" ^ kind)
  | Trace.Worker_spawn _ -> bump_keyed t t.workers "spawned"
  | Trace.Worker_exit _ -> bump_keyed t t.workers "exited"
  | Trace.Worker_reaped _ -> bump_keyed t t.workers "reaped"
  | Trace.Quarantined _ -> bump_keyed t t.workers "quarantined"
  | Trace.Span_close { name; elapsed_s } -> add_phase t name elapsed_s
  | Trace.Solve_start _ | Trace.Socp_iter _ | Trace.Presolve _
  | Trace.Rung_exit _ | Trace.Span_open _ | Trace.Kkt_factor _
  | Trace.Warm_start _ | Trace.Request_start _ ->
    ());
  match t.sink with
  | s when s == Sink.null -> ()
  | s ->
    Sink.emit s
      {
        Trace.seq = Atomic.fetch_and_add t.seq 1;
        time = Clock.now ();
        event;
      }

let with_span obs name f =
  match obs with
  | None -> f ()
  | Some t ->
    emit t (Trace.Span_open { name });
    let t0 = Clock.now () in
    Fun.protect
      ~finally:(fun () ->
        emit t (Trace.Span_close { name; elapsed_s = Clock.now () -. t0 }))
      f

(* The end-of-run metrics table.  Keyed lines render their entries in
   sorted key order, and empty sections are omitted entirely, so the
   output is deterministic for a deterministic run (wall-clock values —
   the [phase ...] and mean-time lines — are the exception, which is
   why they carry a recognisable prefix the cram tests filter on). *)
let keyed_line table label =
  let entries =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  match entries with
  | [] -> None
  | entries ->
    Some
      (Printf.sprintf "%s: %s" label
         (String.concat " "
            (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) entries)))

let report t =
  Mutex.lock t.keyed_mutex;
  let phase_entries =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.phases []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let rung_line = keyed_line t.rungs "rungs" in
  let cert_line = keyed_line t.certificates "certificates" in
  let cand_line = keyed_line t.candidates "candidates" in
  let tighten_line = keyed_line t.tighten "tighten" in
  let fault_line = keyed_line t.faults "faults" in
  let request_line = keyed_line t.requests "requests" in
  let worker_line = keyed_line t.workers "workers" in
  Mutex.unlock t.keyed_mutex;
  let solves = Metrics.Counter.value t.solves in
  let lines = ref [] in
  let add l = lines := l :: !lines in
  add
    (Printf.sprintf "solves: %d (%d iterations)" solves
       (Metrics.Counter.value t.iterations));
  (match rung_line with Some l -> add l | None -> ());
  (match fault_line with Some l -> add l | None -> ());
  (match cert_line with Some l -> add l | None -> ());
  (match cand_line with Some l -> add l | None -> ());
  (match tighten_line with Some l -> add l | None -> ());
  (match request_line with Some l -> add l | None -> ());
  (match worker_line with Some l -> add l | None -> ());
  let hits = Metrics.Counter.value t.restore_hits
  and misses = Metrics.Counter.value t.restore_misses in
  if hits + misses > 0 then
    add (Printf.sprintf "restores: %d hit, %d missed" hits misses);
  let chits = Metrics.Counter.value t.cache_hits
  and cmisses = Metrics.Counter.value t.cache_misses in
  if chits + cmisses > 0 then
    add (Printf.sprintf "memo cache: %d hit, %d missed" chits cmisses);
  let sheds = Metrics.Counter.value t.sheds in
  if sheds > 0 then add (Printf.sprintf "shed: %d" sheds);
  let dispatched = Metrics.Counter.value t.dispatched
  and joined = Metrics.Counter.value t.joined in
  if dispatched + joined > 0 then
    add (Printf.sprintf "pool: %d dispatched, %d joined" dispatched joined);
  if solves > 0 then
    add
      (Printf.sprintf "solve time: %.3f s total, %.4f s mean"
         (Metrics.Histogram.sum t.solve_time)
         (Metrics.Histogram.sum t.solve_time /. float_of_int solves));
  List.iter
    (fun (name, s) -> add (Printf.sprintf "phase %s: %.3f s" name s))
    phase_entries;
  List.rev !lines
