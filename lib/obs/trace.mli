(** The trace event vocabulary and its line codec.

    Every layer of the stack reports through this one variant: the
    interior-point solver (iteration residuals, presolve scaling), the
    recovery ladder (rung enter/exit, injected faults), the mapping
    flow (certificate verdicts), the durable sweeps (restore hits,
    candidate verdicts) and the domain pool (task dispatch/join).  The
    full grammar is documented in docs/observability.md. *)

type event =
  | Solve_start of { rows : int; cols : int }
      (** a cone solve begins, with the (pruned) problem dimensions *)
  | Solve_end of { status : string; iterations : int; time_s : float }
      (** the cone solve returned *)
  | Socp_iter of {
      iter : int;
      pres : float;  (** primal residual of the τ-scaled iterate *)
      dres : float;  (** dual residual *)
      gap : float;  (** complementarity gap *)
      step : float;  (** step length that produced this iterate (0 at iter 0) *)
    }  (** one interior-point iteration *)
  | Presolve of { range_before : float; range_after : float }
      (** Ruiz equilibration ran, with the dynamic range it removed *)
  | Rung_enter of { attempt : int; stage : string }
      (** the recovery ladder starts an attempt on [stage] *)
  | Rung_exit of {
      attempt : int;
      stage : string;
      status : string;
      fault : string option;
          (** the fault kind injected into this attempt, if any *)
    }  (** the attempt returned with [status] *)
  | Fault_injected of { kind : string; attempt : int }
      (** a fault plan fired (solver faults at rung entry, [bad_round]
          at the rounding step) — exactly one per fired fault *)
  | Kkt_factor of { backend : string; phase : string; n : int; nnz : int }
      (** a KKT factorisation event on the sparse path: [backend] is
          ["sparse"] or ["dense"], [phase] is ["symbolic"] (once per
          solve), ["numeric"] (once per iteration) or ["fallback"]
          (the sparse factorisation failed and the iteration reran
          dense); [n] is the system dimension and [nnz] the factor's
          nonzero count (0 for a dense fallback).  Never emitted by
          the pure dense path, so existing dense traces are
          unchanged. *)
  | Warm_start of { accepted : bool; reason : string }
      (** a warm-start point was offered to the solver: accepted (and
          pushed strictly inside the cone) or rejected for [reason]
          (dimension mismatch, non-finite entries) with a silent cold
          start.  Emitted only when [params.warm] is present. *)
  | Certificate of { verdict : string }
      (** exact certification verdict: ["certified"] or ["refuted"] *)
  | Restore of { index : int; hit : bool }
      (** journal restore consulted for sweep slot [index] *)
  | Task_dispatch of { index : int }  (** a pool task starts running *)
  | Task_join of { index : int; ok : bool }
      (** a pool task finished; [ok] is false when it captured an
          exception *)
  | Candidate of { index : int; verdict : string }
      (** a sweep candidate finished: ["ok"], ["feasible"],
          ["infeasible"], ["skipped"] or ["timed out"] *)
  | Request_start of { op : string; id : string }
      (** the admission server parsed a request ([op] is ["admit"],
          ["release"], ["stats"] or ["shutdown"]; [id] is the
          client-chosen job id, empty for control requests) *)
  | Request_done of {
      op : string;
      id : string;
      status : string;
      queue_s : float;  (** time spent in the admission queue *)
      total_s : float;  (** arrival-to-reply wall clock *)
    }  (** the reply was written, with the reply's status tag *)
  | Cache_hit of { key : string }
      (** a canonical-instance memo-cache lookup hit; [key] is the
          8-hex CRC digest of the canonical instance text *)
  | Cache_miss of { key : string }  (** the lookup missed *)
  | Shed of { queue : int }
      (** an admit request was shed by backpressure: the bounded
          admission queue already held [queue] requests *)
  | Chaos_injected of { kind : string; site : string; ordinal : int }
      (** the chaos injector fired fault [kind] at decision [ordinal]
          of injection [site] (e.g. ["request"], ["journal"]) *)
  | Worker_spawn of { pid : int; slot : int }
      (** the supervisor started an isolated solve worker in [slot] *)
  | Worker_exit of { pid : int; reason : string; solves : int }
      (** a worker left the pool after [solves] completed solves;
          [reason] is ["eof"], ["exit N"] or ["signal N"] *)
  | Worker_reaped of { pid : int; after_s : float }
      (** the supervisor SIGKILLed a worker stuck [after_s] seconds
          past its request deadline plus grace *)
  | Quarantined of { key : string; crashes : int }
      (** an instance's canonical-key digest crossed the poison
          threshold after [crashes] worker crashes *)
  | Tighten_probe of { buffer : string; capacity : int; feasible : bool }
      (** the tightening dichotomy ran the simulator once with
          [buffer] at [capacity] (all other buffers analytic);
          [feasible] means the run completed with every graph's
          steady-state period ≤ µ *)
  | Tighten_accept of { buffer : string; capacity : int; saved : int }
      (** the dichotomy settled on [capacity] for [buffer], [saved]
          containers below the analytic bound *)
  | Tighten_reject of { buffer : string; capacity : int }
      (** the dichotomy could not improve on the analytic [capacity]
          (the dataflow bound was already tight for this buffer) *)
  | Span_open of { name : string }  (** a timed phase begins *)
  | Span_close of { name : string; elapsed_s : float }
      (** the phase ends, with its duration on the trace clock *)

(** A stamped event: [seq] is a process-wide monotone sequence number
    (per context) and [time] the {!Clock} reading at emission. *)
type t = { seq : int; time : float; event : event }

(** [event_name e] is the stable snake_case tag (the ["ev"] field). *)
val event_name : event -> string

(** [to_json t] renders one flat JSON object, no trailing newline.
    Finite floats use ["%.17g"] (bit-exact round trip); non-finite
    values are quoted (["nan"], ["inf"], ["-inf"]). *)
val to_json : t -> string

(** [of_json_line line] decodes what {!to_json} wrote; [None] on any
    damage (the caller treats the line as torn). *)
val of_json_line : string -> t option

(** [summary t] is the one-line human rendering used by
    [budgetbuf trace cat]: sequence number, event name and fields —
    {e without} the timestamp, the one nondeterministic column. *)
val summary : t -> string
