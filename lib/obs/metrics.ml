(* Lock-free-per-domain metric cells.

   Each counter (and each histogram bucket) is an array of [slots]
   atomic cells; a domain increments the cell indexed by its own id, so
   concurrent increments from different domains land on different cache
   lines with no lock and no contention in the common case.  Reads fold
   over all cells — they happen at join time (after [Pool.map] returns,
   or at end-of-run for the metrics table), when the writers are
   quiescent, so the fold is an exact total even though it is not a
   single atomic snapshot. *)

let slots = 64 (* power of two: domain ids fold in with a mask *)

let slot_of_domain () = (Domain.self () :> int) land (slots - 1)

module Counter = struct
  type t = int Atomic.t array

  let make () = Array.init slots (fun _ -> Atomic.make 0)

  let incr ?(by = 1) t =
    ignore (Atomic.fetch_and_add t.(slot_of_domain ()) by)

  let value t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t
end

module Histogram = struct
  type t = {
    bounds : float array; (* strictly increasing upper bounds *)
    buckets : int Atomic.t array array; (* slots × (bounds + overflow) *)
    counts : int Atomic.t array;
    sums : float Atomic.t array;
  }

  (* Wall-clock-of-a-solve scale: 0.1 ms up to 10 s, then overflow. *)
  let default_bounds = [| 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0 |]

  let make ?(bounds = default_bounds) () =
    Array.iteri
      (fun i b ->
        if i > 0 && b <= bounds.(i - 1) then
          invalid_arg "Obs.Metrics.Histogram.make: bounds must be increasing")
      bounds;
    {
      bounds = Array.copy bounds;
      buckets =
        Array.init slots (fun _ ->
            Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0));
      counts = Array.init slots (fun _ -> Atomic.make 0);
      sums = Array.init slots (fun _ -> Atomic.make 0.0);
    }

  let rec atomic_add_float cell v =
    let old = Atomic.get cell in
    if not (Atomic.compare_and_set cell old (old +. v)) then
      atomic_add_float cell v

  let observe t v =
    let slot = slot_of_domain () in
    let n = Array.length t.bounds in
    let rec bucket i = if i >= n || v <= t.bounds.(i) then i else bucket (i + 1) in
    ignore (Atomic.fetch_and_add t.buckets.(slot).(bucket 0) 1);
    ignore (Atomic.fetch_and_add t.counts.(slot) 1);
    atomic_add_float t.sums.(slot) v

  let count t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.counts
  let sum t = Array.fold_left (fun acc c -> acc +. Atomic.get c) 0.0 t.sums

  let buckets t =
    Array.init
      (Array.length t.bounds + 1)
      (fun i ->
        let upper =
          if i < Array.length t.bounds then t.bounds.(i) else Float.infinity
        in
        ( upper,
          Array.fold_left (fun acc row -> acc + Atomic.get row.(i)) 0 t.buckets
        ))
end
