(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
   of gzip and PNG.  Table-driven, one table built at module load.

   This lives at the bottom of the dependency graph so both the trace
   sinks here and the sweep journals in [Durable] (which re-exports
   this module as [Durable.Crc]) can frame their lines with it. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let update crc s =
  let table = Lazy.force table in
  let crc = ref (Int32.lognot crc) in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code ch))) 0xFFl)
      in
      crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8))
    s;
  Int32.lognot !crc

let string s = update 0l s

let hex crc = Printf.sprintf "%08lx" crc
