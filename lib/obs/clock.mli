(** The clock that stamps trace events and measures spans.

    Injectable for tests, mirroring [Durable.Deadline]: a deterministic
    clock yields bit-identical traces, which is what makes them
    testable at all (docs/observability.md). *)

(** [now ()] reads the trace clock. *)
val now : unit -> float

(** [set_clock_for_testing (Some f)] replaces the wall clock with [f];
    [None] restores [Unix.gettimeofday].  Tests only. *)
val set_clock_for_testing : (unit -> float) option -> unit
