(** CRC-32 (IEEE 802.3), the checksum of gzip and PNG.  Used to detect
    torn or corrupted lines in trace files ({!Sink}) and sweep journals
    ([Durable.Journal], which re-exports this module). *)

(** [string s] is the CRC-32 of [s].  The classic check value holds:
    [string "123456789" = 0xCBF43926l]. *)
val string : string -> int32

(** [update crc s] extends a running checksum, so
    [update (string a) b = string (a ^ b)]. *)
val update : int32 -> string -> int32

(** [hex crc] is the 8-digit lowercase hex rendering. *)
val hex : int32 -> string
