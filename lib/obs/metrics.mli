(** Lock-free-per-domain counters and histograms.

    Writers touch only the atomic cell indexed by their own domain id
    — no lock, no shared cache line in the common case — and readers
    fold over all cells at join time (after the pool has drained, or at
    end-of-run for the [--metrics] table), when the total is exact. *)

module Counter : sig
  type t

  val make : unit -> t

  (** [incr ?by t] adds [by] (default 1) to the calling domain's cell.
      Thread-safe from any domain. *)
  val incr : ?by:int -> t -> unit

  (** [value t] folds all cells.  Exact when the writers are quiescent;
      otherwise a consistent partial sum (never torn). *)
  val value : t -> int
end

module Histogram : sig
  type t

  (** [make ?bounds ()] builds a histogram with the given strictly
      increasing upper bucket bounds (default: a wall-clock scale from
      0.1 ms to 10 s) plus an implicit overflow bucket.
      @raise Invalid_argument if the bounds are not increasing. *)
  val make : ?bounds:float array -> unit -> t

  (** [observe t v] records [v] in the calling domain's cells. *)
  val observe : t -> float -> unit

  (** [count t] is the total number of observations. *)
  val count : t -> int

  (** [sum t] is the sum of all observed values. *)
  val sum : t -> float

  (** [buckets t] pairs each bucket's upper bound (the last is
      [infinity]) with its aggregated count. *)
  val buckets : t -> (float * int) array
end
