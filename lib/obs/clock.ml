(* The trace clock, replaceable for tests: a golden-trace test must get
   bit-identical timestamps and span durations, so it installs a
   deterministic counter here (the same pattern as
   [Durable.Deadline.set_clock_for_testing]). *)

let clock = ref Unix.gettimeofday

let set_clock_for_testing = function
  | None -> clock := Unix.gettimeofday
  | Some f -> clock := f

let now () = !clock ()
