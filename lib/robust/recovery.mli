(** Staged recovery ladder around the cone solve.

    A single interior-point run can stop with [Stalled] or
    [Iteration_limit] on badly conditioned instances.  Instead of
    surfacing that status immediately, {!solve_model} climbs a ladder
    of retries, each one cheaper to certify than to predict:

    + [Base] — the caller's parameters, unchanged;
    + [Relaxed] — tolerances loosened by 10× (accepts the "close to
      optimal" iterate the strict run rejected);
    + [Deep] — [max_iter] raised 4× (slow-but-steady convergence);
    + [Jittered] — deep iteration budget, loose tolerances, a smaller
      fraction-to-boundary step, forced Ruiz re-equilibration and the
      dense KKT oracle backend — a genuinely different trajectory
      through the central path.

    Every rung past [Base] also drops any warm-start point from the
    parameters: the retry must not repeat the seeded trajectory that
    just failed.

    The ladder stops at the first attempt that returns [Optimal] or an
    infeasibility certificate (certificates are exact verdicts; there
    is nothing to retry).  Every attempt is recorded in a {!trace} that
    callers surface in stats and reports.  A fifth, problem-specific
    rung — falling back to the exact-simplex buffer LP — lives in
    [Budgetbuf.Mapping], which alone knows how to restate the problem;
    it reuses {!Fault.covers} and the [Fallback_lp] stage label here.

    Fault injection: the policy's {!Fault.plan} decides which attempts
    run with a sabotaged solver ({!Conic.Socp.params.inject}), letting
    tests pin every rung deterministically. *)

type stage = Base | Relaxed | Deep | Jittered | Fallback_lp

(** One ladder attempt: which rung, the solver status it returned (as
    printed by {!Conic.Socp.pp_status}, or a short free-form note for
    the fallback), and its cost. *)
type attempt = {
  stage : stage;
  status : string;
  iterations : int;
  time_s : float;
}

type trace = attempt list

val stage_name : stage -> string

(** [attempts trace] is the number of attempts recorded. *)
val attempts : trace -> int

(** [recovered trace] is true when the solve needed more than the
    [Base] attempt. *)
val recovered : trace -> bool

(** [pp_trace ppf trace] prints ["base: stalled; relaxed: optimal"]. *)
val pp_trace : Format.formatter -> trace -> unit

type policy = {
  fault : Fault.plan option;  (** injected faults, for tests *)
  max_rungs : int;  (** how many cone-solver rungs to climb, 1–4 *)
}

(** [default_policy ()] reads {!Fault.of_env} and enables the full
    ladder.  Evaluated per call so the environment is honoured even
    when the library was loaded earlier.
    @raise Invalid_argument on a malformed [BUDGETBUF_FAULT]. *)
val default_policy : unit -> policy

(** [no_recovery] disables every retry (the pre-ladder behaviour):
    one [Base] attempt, no fault. *)
val no_recovery : policy

(** [rung_params base stage] is [base] adjusted for [stage] (the table
    above).  [Fallback_lp] returns [base] unchanged. *)
val rung_params : Conic.Socp.params -> stage -> Conic.Socp.params

(** [solve_model ?policy ?params m] runs the ladder over
    {!Conic.Model.solve} and returns the last result together with the
    trace (≥ 1 attempt).  The result is the first [Optimal] /
    certificate outcome, or the final rung's failure. *)
val solve_model :
  ?policy:policy ->
  ?params:Conic.Socp.params ->
  Conic.Model.model ->
  Conic.Model.result * trace
