module Socp = Conic.Socp
module Model = Conic.Model

type stage = Base | Relaxed | Deep | Jittered | Fallback_lp

type attempt = {
  stage : stage;
  status : string;
  iterations : int;
  time_s : float;
}

type trace = attempt list

let stage_name = function
  | Base -> "base"
  | Relaxed -> "relaxed"
  | Deep -> "deep"
  | Jittered -> "jittered"
  | Fallback_lp -> "fallback-lp"

let attempts = List.length
let recovered = function [] | [ { stage = Base; _ } ] -> false | _ -> true

let pp_trace ppf trace =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
    (fun ppf a -> Format.fprintf ppf "%s: %s" (stage_name a.stage) a.status)
    ppf trace

type policy = { fault : Fault.plan option; max_rungs : int }

let default_policy () = { fault = Fault.of_env (); max_rungs = 4 }
let no_recovery = { fault = None; max_rungs = 1 }

let rung_params (base : Socp.params) = function
  | Base | Fallback_lp -> base
  (* Every rung past [Base] drops the warm-start point: a seed that
     steered the base attempt into a stall must not steer the retry
     too (the cold start is the known-good trajectory). *)
  | Relaxed ->
    {
      base with
      Socp.feastol = base.Socp.feastol *. 10.0;
      abstol = base.Socp.abstol *. 10.0;
      reltol = base.Socp.reltol *. 10.0;
      warm = None;
    }
  | Deep -> { base with Socp.max_iter = base.Socp.max_iter * 4; warm = None }
  | Jittered ->
    {
      base with
      Socp.max_iter = base.Socp.max_iter * 4;
      feastol = base.Socp.feastol *. 10.0;
      abstol = base.Socp.abstol *. 10.0;
      reltol = base.Socp.reltol *. 10.0;
      (* A shorter fraction-to-boundary step and forced re-equilibration
         push the iteration onto a different trajectory entirely — and
         the proven dense KKT oracle replaces the sparse backend, in
         case the stall was the factorisation's fault. *)
      step_fraction = 0.9;
      presolve = Socp.Presolve_force;
      warm = None;
      kkt = `Dense;
    }

let cone_stages = [ Base; Relaxed; Deep; Jittered ]

let solve_model ?policy ?(params = Socp.default_params) m =
  let policy = match policy with Some p -> p | None -> default_policy () in
  let rungs =
    List.filteri (fun i _ -> i < Int.max 1 policy.max_rungs) cone_stages
  in
  let run attempt_no stage =
    let p = rung_params params stage in
    let p = { p with Socp.inject = Fault.inject policy.fault ~attempt:attempt_no } in
    (* The fault label carried by the rung-exit event (and the
       [Fault_injected] marker): the trace must agree exactly with the
       plan — one fired fault, one matching event. *)
    let fault =
      if Fault.covers policy.fault ~attempt:attempt_no then
        Option.map (fun pl -> Fault.kind_name pl.Fault.kind) policy.fault
      else None
    in
    (match p.Socp.obs with
    | None -> ()
    | Some o ->
      Obs.Ctx.emit o
        (Obs.Trace.Rung_enter { attempt = attempt_no; stage = stage_name stage });
      match fault with
      | None -> ()
      | Some kind ->
        Obs.Ctx.emit o (Obs.Trace.Fault_injected { kind; attempt = attempt_no }));
    let t0 = Unix.gettimeofday () in
    let r = Model.solve ~params:p m in
    let att =
      {
        stage;
        status = Format.asprintf "%a" Socp.pp_status r.Model.status;
        iterations = r.Model.raw.Socp.iterations;
        time_s = Unix.gettimeofday () -. t0;
      }
    in
    (match p.Socp.obs with
    | None -> ()
    | Some o ->
      Obs.Ctx.emit o
        (Obs.Trace.Rung_exit
           {
             attempt = attempt_no;
             stage = stage_name stage;
             status = att.status;
             fault;
           }));
    (r, att)
  in
  let rec climb attempt_no trace = function
    | [] -> assert false
    | stage :: rest ->
      let r, att = run attempt_no stage in
      let trace = att :: trace in
      let final = List.rev trace in
      (match r.Model.status with
      (* Certificates are exact verdicts of the homogeneous embedding;
         retrying could only burn time to reach the same answer.  A
         timed-out attempt is final too: the deadline that expired on
         this rung can only be more expired on the next. *)
      | Socp.Optimal | Socp.Primal_infeasible | Socp.Dual_infeasible
      | Socp.Timed_out ->
        (r, final)
      | Socp.Iteration_limit | Socp.Stalled ->
        if rest = [] then (r, final) else climb (attempt_no + 1) trace rest)
  in
  climb 1 [] rungs
