module Socp = Conic.Socp

type process = Crash | Hang | Oom

type kind = Solver of Socp.fault | Bad_round | Process of process

type plan = {
  kind : kind;
  iteration : int;
  attempts : int;
  only : int option;
}

let stall_first =
  { kind = Solver Socp.Stall; iteration = 0; attempts = 1; only = None }

let of_string spec =
  let spec = String.trim spec in
  match String.split_on_char ',' spec with
  | [] | [ "" ] -> Error "empty fault spec"
  | kind :: opts -> begin
    match
      (match String.trim kind with
      | "stall" -> Ok (Solver Socp.Stall)
      | "nan" -> Ok (Solver Socp.Nan)
      | "slow" -> Ok (Solver Socp.Slow)
      | "dense_kkt" -> Ok (Solver Socp.Dense_kkt)
      | "bad_round" -> Ok Bad_round
      | "crash" -> Ok (Process Crash)
      | "hang" -> Ok (Process Hang)
      | "oom" -> Ok (Process Oom)
      | k ->
        Error
          (Printf.sprintf
             "unknown fault kind %S (expected stall, nan, slow, dense_kkt, \
              bad_round, crash, hang or oom)" k))
    with
    | Error _ as e -> e
    | Ok kind ->
      let parse_int name v =
        match int_of_string_opt (String.trim v) with
        | Some n when n >= 0 -> Ok n
        | Some _ | None ->
          Error (Printf.sprintf "fault spec: %s expects a non-negative integer, got %S" name v)
      in
      List.fold_left
        (fun acc opt ->
          match acc with
          | Error _ as e -> e
          | Ok plan -> begin
            match String.index_opt opt '=' with
            | None -> Error (Printf.sprintf "fault spec: malformed option %S" opt)
            | Some i ->
              let key = String.trim (String.sub opt 0 i) in
              let v = String.sub opt (i + 1) (String.length opt - i - 1) in
              (match key with
              | "iter" ->
                Result.map (fun n -> { plan with iteration = n }) (parse_int "iter" v)
              | "attempts" -> begin
                match String.trim v with
                | "all" -> Ok { plan with attempts = max_int }
                | v -> begin
                  match int_of_string_opt v with
                  | Some n when n >= 1 -> Ok { plan with attempts = n }
                  | Some _ | None ->
                    Error
                      (Printf.sprintf
                         "fault spec: attempts expects a positive integer or \
                          \"all\", got %S" v)
                end
              end
              | "only" ->
                Result.map (fun n -> { plan with only = Some n }) (parse_int "only" v)
              | k -> Error (Printf.sprintf "fault spec: unknown option %S" k))
          end)
        (Ok { stall_first with kind })
        opts
  end

let kind_name = function
  | Solver Socp.Stall -> "stall"
  | Solver Socp.Nan -> "nan"
  | Solver Socp.Slow -> "slow"
  | Solver Socp.Dense_kkt -> "dense_kkt"
  | Bad_round -> "bad_round"
  | Process Crash -> "crash"
  | Process Hang -> "hang"
  | Process Oom -> "oom"

let to_string plan =
  let kind = kind_name plan.kind in
  let b = Buffer.create 32 in
  Buffer.add_string b kind;
  if plan.iteration <> 0 then
    Buffer.add_string b (Printf.sprintf ",iter=%d" plan.iteration);
  if plan.attempts <> 1 then
    Buffer.add_string b
      (if plan.attempts = max_int then ",attempts=all"
       else Printf.sprintf ",attempts=%d" plan.attempts);
  (match plan.only with
  | None -> ()
  | Some i -> Buffer.add_string b (Printf.sprintf ",only=%d" i));
  Buffer.contents b

let of_env () =
  match Sys.getenv_opt "BUDGETBUF_FAULT" with
  | None -> None
  | Some s when String.trim s = "" -> None
  | Some s -> begin
    match of_string s with
    | Ok plan -> Some plan
    | Error msg ->
      invalid_arg (Printf.sprintf "BUDGETBUF_FAULT: %s" msg)
  end

let for_candidate plan ~index =
  match plan with
  | None -> None
  | Some { only = None; _ } -> plan
  | Some ({ only = Some i; _ } as p) ->
    if i = index then Some { p with only = None } else None

let covers plan ~attempt =
  match plan with
  | None | Some { kind = Bad_round | Process _; _ } -> false
  | Some p -> attempt <= p.attempts

let process_kind = function
  | Some { kind = Process p; _ } -> Some p
  | Some _ | None -> None

let inject plan ~attempt =
  match plan with
  | Some ({ kind = Solver fault; _ } as p) when attempt <= p.attempts ->
    Some (fun iter -> if iter = p.iteration then Some fault else None)
  | Some _ | None -> None

let corrupts_rounding = function
  | Some { kind = Bad_round; _ } -> true
  | Some _ | None -> false

(* Deterministic schedule randomness: splitmix64 output mixing over a
   (seed, salt, ordinal) triple.  Chaos schedules and client backoff
   jitter both key on this, so the same seed replays the same decision
   sequence byte for byte on any platform. *)

let mix64 x =
  let open Int64 in
  let z = add x 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let det_bits ~seed ~salt n =
  let h = ref (mix64 (Int64.of_int seed)) in
  String.iter
    (fun c -> h := mix64 (Int64.logxor !h (Int64.of_int (Char.code c))))
    salt;
  mix64 (Int64.logxor !h (Int64.of_int n))

let det_int ~seed ~salt ~bound n =
  if bound <= 0 then invalid_arg "Fault.det_int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (det_bits ~seed ~salt n) 2) in
  v mod bound

let det_float ~seed ~salt n =
  let v = Int64.to_float (Int64.shift_right_logical (det_bits ~seed ~salt n) 11) in
  v *. 0x1p-53
