(** Deterministic fault-injection plans.

    A plan describes which solver attempts of a {!Recovery} ladder are
    sabotaged and how, so tests (and the [@runtest-fault] suite) can
    exercise every recovery rung without fishing for pathological
    instances.  Plans are plain data parsed from a spec string:

    {v KIND[,iter=N][,attempts=N|all][,only=I] v}

    where [KIND] is [stall], [nan], [slow], [dense_kkt], [bad_round],
    [crash], [hang] or [oom], [iter] is
    the interior-point iteration at which the fault fires (default 0),
    [attempts] is how many leading ladder attempts are faulted
    (default 1; [all] faults every attempt {e including} the simplex
    fallback, making the solve fail permanently), and [only] restricts
    the plan to the [I]-th candidate (0-based) of a sweep.

    [bad_round] is different in nature: it leaves the solver alone and
    instead corrupts the solution {e after} rounding (one budget down a
    granule), so the exact-certification refutation path can be pinned
    deterministically.

    The CLI accepts a spec through [--fault]; the test suites through
    the [BUDGETBUF_FAULT] environment variable. *)

(** Process-level faults, executed by the isolated solve worker rather
    than the in-process solver: [Crash] SIGKILLs the worker mid-solve,
    [Hang] livelocks it until the supervisor reaps it past the deadline
    grace, [Oom] allocates until the rlimit (or the 1 GiB safety cap)
    kills it.  In-process solves treat these as no-ops. *)
type process = Crash | Hang | Oom

type kind =
  | Solver of Conic.Socp.fault  (** injected into the IPM iteration *)
  | Bad_round  (** corrupts the rounded solution, not the solver *)
  | Process of process  (** executed by the isolated solve worker *)

type plan = {
  kind : kind;
  iteration : int;  (** IPM iteration at which the fault fires *)
  attempts : int;
      (** number of leading ladder attempts faulted; [max_int] ("all")
          also disables the simplex fallback *)
  only : int option;  (** restrict to one 0-based sweep candidate *)
}

(** [stall_first] is the simplest plan: [Stall] at iteration 0 of the
    first attempt only. *)
val stall_first : plan

(** [kind_name kind] is the spec keyword of [kind] (["stall"], ["nan"],
    ["slow"], ["bad_round"], ["crash"], ["hang"], ["oom"]) — also the
    label trace events carry. *)
val kind_name : kind -> string

(** [of_string spec] parses the spec grammar above. *)
val of_string : string -> (plan, string) Stdlib.result

(** [to_string plan] prints a spec that parses back to [plan]. *)
val to_string : plan -> string

(** [of_env ()] reads [BUDGETBUF_FAULT]: [None] when unset or blank.
    @raise Invalid_argument on a malformed spec. *)
val of_env : unit -> plan option

(** [for_candidate plan ~index] specialises a plan to sweep candidate
    [index]: a plan with [only = Some i] applies (with the restriction
    dropped) only when [i = index]; a plan without [only] applies to
    every candidate. *)
val for_candidate : plan option -> index:int -> plan option

(** [covers plan ~attempt] is true when the 1-based ladder [attempt] is
    faulted under [plan].  Always false for [Bad_round] and [Process]
    plans, which do not touch the solver. *)
val covers : plan option -> attempt:int -> bool

(** [process_kind plan] is the process-level fault requested by [plan],
    if any.  Only the isolated solve worker acts on these; everywhere
    else a [Process] plan is inert. *)
val process_kind : plan option -> process option

(** [corrupts_rounding plan] is true when [plan] asks for the rounded
    solution to be corrupted ([Bad_round]). *)
val corrupts_rounding : plan option -> bool

(** [inject plan ~attempt] is the {!Conic.Socp.params.inject} hook for
    the given 1-based ladder attempt — [None] when the attempt is not
    covered by the plan. *)
val inject : plan option -> attempt:int -> (int -> Conic.Socp.fault option) option

(** {2 Deterministic schedule randomness}

    Stateless splitmix64-style mixing over a [(seed, salt, ordinal)]
    triple.  Chaos schedules ({!Serve.Chaos}) and client backoff jitter
    draw from these so that a given seed replays the exact same
    decision sequence on every run and platform — no hidden global
    state, no wall clock. *)

(** [det_int ~seed ~salt ~bound n] is a deterministic pseudo-random
    integer in [\[0, bound)] for ordinal [n] of the stream named
    [salt].  @raise Invalid_argument when [bound <= 0]. *)
val det_int : seed:int -> salt:string -> bound:int -> int -> int

(** [det_float ~seed ~salt n] is a deterministic pseudo-random float in
    [\[0, 1)] for ordinal [n] of the stream named [salt]. *)
val det_float : seed:int -> salt:string -> int -> float
