exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun s -> raise (Parse_error (line, s))) fmt

let words line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let float_list lineno what text =
  String.split_on_char ',' text
  |> List.map (fun s ->
         match float_of_string_opt (String.trim s) with
         | Some f -> f
         | None -> fail lineno "%s: %S is not a number" what s)

let int_list lineno what text =
  String.split_on_char ',' text
  |> List.map (fun s ->
         match int_of_string_opt (String.trim s) with
         | Some i -> i
         | None -> fail lineno "%s: %S is not an integer" what s)

let of_string text =
  let t = Csdf.create () in
  let actors = Hashtbl.create 16 in
  let wrap lineno f = try f () with Invalid_argument msg -> fail lineno "%s" msg in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      match words line with
      | [] -> ()
      | head :: _ when String.length head > 0 && head.[0] = '#' -> ()
      | [ "actor"; name; "durations"; ds ] | [ "actor"; name; "duration"; ds ]
        ->
        if Hashtbl.mem actors name then fail lineno "duplicate actor %S" name;
        let durations =
          Array.of_list (float_list lineno "durations" ds)
        in
        wrap lineno (fun () ->
            Hashtbl.replace actors name (Csdf.add_actor t ~name ~durations))
      | "channel" :: src :: prod :: "->" :: dst :: cons :: rest ->
        let initial =
          match rest with
          | [] -> 0
          | [ "initial"; n ] -> begin
            match int_of_string_opt n with
            | Some i -> i
            | None -> fail lineno "initial: %S is not an integer" n
          end
          | _ -> fail lineno "trailing tokens after channel declaration"
        in
        let find what name =
          match Hashtbl.find_opt actors name with
          | Some a -> a
          | None -> fail lineno "unknown %s actor %S" what name
        in
        let src_a = find "source" src and dst_a = find "destination" dst in
        let production = Array.of_list (int_list lineno "production" prod) in
        let consumption = Array.of_list (int_list lineno "consumption" cons) in
        wrap lineno (fun () ->
            ignore
              (Csdf.add_channel t ~src:src_a ~production ~dst:dst_a
                 ~consumption ~initial_tokens:initial ()))
      | head :: _ -> fail lineno "unknown declaration %S" head)
    (String.split_on_char '\n' text);
  (t, fun name -> Hashtbl.find actors name)

(* The total entry point: arbitrary bytes — a truncated download, a
   bit-flipped file, fuzz input — come back as [Error (line, msg)],
   never as an escaping exception.  [Parse_error] is the designed
   failure; anything else out of the parser ([Invalid_argument] from a
   malformed UTF-8 float, [Failure] from a library call) is a parser
   bug from the caller's point of view, so it is reported on line 0
   rather than allowed to escape. *)
let of_string_result text =
  match of_string text with
  | v -> Ok v
  | exception Parse_error (line, msg) -> Error (line, msg)
  | exception (Invalid_argument msg | Failure msg) -> Error (0, msg)

let of_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  of_string content
