type actor = int
type channel = int

type actor_info = { name : string; durations : float array }

type channel_info = {
  src : actor;
  production : int array;
  dst : actor;
  consumption : int array;
  initial : int;
}

type t = {
  mutable actor_infos : actor_info list; (* reversed *)
  mutable nactors : int;
  mutable channel_infos : channel_info list; (* reversed *)
  mutable nchannels : int;
}

let create () =
  { actor_infos = []; nactors = 0; channel_infos = []; nchannels = 0 }

let add_actor t ~name ~durations =
  if Array.length durations = 0 then
    invalid_arg "Csdf.add_actor: at least one phase required";
  Array.iter
    (fun d ->
      if d < 0.0 || not (Float.is_finite d) then
        invalid_arg "Csdf.add_actor: durations must be finite and >= 0")
    durations;
  let a = t.nactors in
  t.actor_infos <- { name; durations = Array.copy durations } :: t.actor_infos;
  t.nactors <- a + 1;
  a

let check_actor t a =
  if a < 0 || a >= t.nactors then invalid_arg "Csdf: unknown actor"

let actor_infos t = Array.of_list (List.rev t.actor_infos)

let phases_of info = Array.length info.durations

let add_channel t ~src ~production ~dst ~consumption ?(initial_tokens = 0) ()
    =
  check_actor t src;
  check_actor t dst;
  let infos = actor_infos t in
  if Array.length production <> phases_of infos.(src) then
    invalid_arg "Csdf.add_channel: production length <> phases of src";
  if Array.length consumption <> phases_of infos.(dst) then
    invalid_arg "Csdf.add_channel: consumption length <> phases of dst";
  let check_rates name rates =
    let sum = ref 0 in
    Array.iter
      (fun r ->
        if r < 0 then
          invalid_arg (Printf.sprintf "Csdf.add_channel: negative %s" name)
        else sum := !sum + r)
      rates;
    if !sum = 0 then
      invalid_arg (Printf.sprintf "Csdf.add_channel: all-zero %s" name)
  in
  check_rates "production" production;
  check_rates "consumption" consumption;
  if initial_tokens < 0 then
    invalid_arg "Csdf.add_channel: initial tokens must be >= 0";
  let c = t.nchannels in
  t.channel_infos <-
    {
      src;
      production = Array.copy production;
      dst;
      consumption = Array.copy consumption;
      initial = initial_tokens;
    }
    :: t.channel_infos;
  t.nchannels <- c + 1;
  c

let num_actors t = t.nactors
let actors t = List.init t.nactors Fun.id
let num_channels t = t.nchannels

let actor_name t a =
  check_actor t a;
  (actor_infos t).(a).name

let phases t a =
  check_actor t a;
  phases_of (actor_infos t).(a)

(* The balance equations over whole phase cycles coincide with an SDF
   graph whose rates are the per-cycle sums, so delegate. *)
let repetition_vector t =
  let sdf = Sdf.create () in
  let infos = actor_infos t in
  let sdf_actors =
    Array.map (fun info -> Sdf.add_actor sdf ~name:info.name ~duration:0.0) infos
  in
  let sum = Array.fold_left ( + ) 0 in
  List.iter
    (fun ch ->
      ignore
        (Sdf.add_channel sdf ~src:sdf_actors.(ch.src)
           ~production:(sum ch.production) ~dst:sdf_actors.(ch.dst)
           ~consumption:(sum ch.consumption) ()))
    (List.rev t.channel_infos);
  match Sdf.repetition_vector sdf with
  | Error _ as e -> e
  | Ok q ->
    Ok
      (fun a ->
        check_actor t a;
        q sdf_actors.(a))

type expansion = {
  srdf : Srdf.t;
  firing : actor -> int -> Srdf.actor;
  repetitions : actor -> int;
}

let floor_div a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)
let emod a b = ((a mod b) + b) mod b

(* Cumulative tokens over the first [k] firings (k may be ≤ 0), given
   the per-phase rate vector.  One full cycle moves [total] tokens. *)
let cumulative rates k =
  let p = Array.length rates in
  let total = Array.fold_left ( + ) 0 rates in
  let cycles = floor_div k p in
  let rest = k - (cycles * p) in
  let partial = ref 0 in
  for i = 0 to rest - 1 do
    partial := !partial + rates.(i)
  done;
  (cycles * total) + !partial

(* Smallest firing index k with cumulative(rates, k) ≥ m.  Monotone in
   k, so locate the cycle by division and the phase by a linear scan. *)
let producing_firing rates m =
  let p = Array.length rates in
  let total = Array.fold_left ( + ) 0 rates in
  (* cumulative(k) ≥ m ⟺ k ≥ k*; search around cycle floor. *)
  let approx_cycles = floor_div (m - total) total in
  let rec search k =
    if cumulative rates k >= m then k else search (k + 1)
  in
  search (approx_cycles * p)

let expand ?(serialize = false) t =
  match repetition_vector t with
  | Error _ as e -> e
  | Ok q ->
    let infos = actor_infos t in
    let srdf = Srdf.create () in
    let firings_per_iter a = q a * phases_of infos.(a) in
    let copies =
      Array.mapi
        (fun a info ->
          Array.init (firings_per_iter a) (fun k ->
              let phase = k mod phases_of info in
              Srdf.add_actor srdf
                ~name:(Printf.sprintf "%s#%d.%d" info.name (k + 1) (phase + 1))
                ~duration:info.durations.(phase)))
        infos
    in
    if serialize then
      Array.iter
        (fun arr ->
          let qn = Array.length arr in
          if qn > 1 then
            for k = 0 to qn - 1 do
              ignore
                (Srdf.add_edge srdf ~src:arr.(k)
                   ~dst:arr.((k + 1) mod qn)
                   ~tokens:(if k = qn - 1 then 1 else 0))
            done)
        copies;
    List.iter
      (fun ch ->
        let qa = firings_per_iter ch.src and qb = firings_per_iter ch.dst in
        let bests = Hashtbl.create 16 in
        for l = 1 to qb do
          let consumed_before = cumulative ch.consumption (l - 1) in
          let consumed_after = cumulative ch.consumption l in
          for n_tok = consumed_before + 1 to consumed_after do
            let k' = producing_firing ch.production (n_tok - ch.initial) in
            let s = emod (k' - 1) qa + 1 in
            let it = ((k' - s) / qa) + 1 in
            let delta = 1 - it in
            assert (delta >= 0);
            let key = (s, l) in
            match Hashtbl.find_opt bests key with
            | Some d when d <= delta -> ()
            | Some _ | None -> Hashtbl.replace bests key delta
          done
        done;
        Hashtbl.iter
          (fun (s, l) delta ->
            ignore
              (Srdf.add_edge srdf
                 ~src:copies.(ch.src).(s - 1)
                 ~dst:copies.(ch.dst).(l - 1)
                 ~tokens:delta))
          bests)
      (List.rev t.channel_infos);
    Ok
      {
        srdf;
        firing =
          (fun a k ->
            check_actor t a;
            if k < 1 || k > firings_per_iter a then
              invalid_arg "Csdf.expansion.firing: range"
            else copies.(a).(k - 1));
        repetitions = q;
      }

let iteration_period ?serialize t =
  match expand ?serialize t with
  | Error _ as e -> e
  | Ok { srdf; _ } -> begin
    match Howard.max_cycle_ratio srdf with
    | Analysis.Mcr r -> Ok r
    | Analysis.Acyclic -> Ok 0.0
    | Analysis.Deadlocked ->
      Error "deadlocked CSDF graph: a cycle has too few initial tokens"
  end
