(** Strongly connected components of an SRDF graph (Tarjan's
    algorithm).

    Cycle-based analyses (maximum cycle ratio, deadlock detection) only
    need to look inside SCCs; decomposing first both speeds them up and
    lets callers report per-component diagnostics. *)

type t

(** [compute g] runs Tarjan's algorithm (iterative, so deep graphs do
    not overflow the stack). *)
val compute : Srdf.t -> t

(** [count t] is the number of components. *)
val count : t -> int

(** [component_of t v] is the component index of actor [v], in reverse
    topological order (an edge between components always goes from a
    higher index to a lower one... specifically from its component to a
    component appearing earlier in {!components}). *)
val component_of : t -> Srdf.actor -> int

(** [components t] lists each component's actors.  Components appear in
    reverse topological order of the condensation. *)
val components : t -> Srdf.actor list list

(** [internal_edges t g c] lists the edges of [g] with both endpoints
    in component [c]. *)
val internal_edges : t -> Srdf.t -> int -> Srdf.edge list

(** [is_trivial t g c] is true when component [c] is a single actor
    without a self-loop (such a component carries no cycle). *)
val is_trivial : t -> Srdf.t -> int -> bool
