(** Multi-rate synchronous dataflow (SDF) graphs and their expansion to
    single-rate (HSDF) form.

    The paper restricts itself to single-rate graphs "for reasons of
    space" and names more expressive dataflow models as the essential
    next step.  This module provides that substrate: SDF actors produce
    [production] tokens and consume [consumption] tokens per firing;
    the balance equations determine how many times each actor fires per
    graph iteration (the repetition vector), and the standard expansion
    (Lee & Messerschmitt 1987; Sriram & Bhattacharyya 2000) turns a
    consistent SDF graph into an equivalent SRDF graph on which all the
    analyses of {!Analysis} and {!Howard} apply. *)

type t
type actor
type channel

(** [create ()] is an empty SDF graph. *)
val create : unit -> t

(** [add_actor t ~name ~duration] adds an actor with the given firing
    duration.
    @raise Invalid_argument on negative duration. *)
val add_actor : t -> name:string -> duration:float -> actor

(** [add_channel t ~src ~production ~dst ~consumption ?initial_tokens
    ()] adds a channel on which every firing of [src] produces
    [production] tokens and every firing of [dst] consumes
    [consumption] tokens; [initial_tokens] defaults to 0.
    @raise Invalid_argument on non-positive rates or negative
    tokens. *)
val add_channel :
  t -> src:actor -> production:int -> dst:actor -> consumption:int ->
  ?initial_tokens:int -> unit -> channel

(** Accessors. *)
val num_actors : t -> int

(** [actors t] lists all actors in declaration order. *)
val actors : t -> actor list

val num_channels : t -> int
val actor_name : t -> actor -> string

(** [repetition_vector t] solves the balance equations
    [production(ch)·q(src) = consumption(ch)·q(dst)], returning the
    smallest positive integer solution per connected component.
    @return [Error msg] when the graph is inconsistent (no such
    solution exists — a graph that cannot execute in bounded memory). *)
val repetition_vector : t -> ((actor -> int), string) Stdlib.result

(** The result of expanding an SDF graph to single-rate form. *)
type expansion = {
  srdf : Srdf.t;
  copy : actor -> int -> Srdf.actor;
      (** [copy a k] is the SRDF actor of the [k]-th firing of [a] in
          an iteration, [1 ≤ k ≤ q(a)].
          @raise Invalid_argument out of range. *)
  repetitions : actor -> int;  (** the repetition vector *)
}

(** [expand ?serialize t] builds the equivalent SRDF graph: [q(a)]
    copies of every actor, and for every channel the inter-firing
    dependency edges carrying their iteration-distance token counts.
    With [serialize:true] (default [false]) the copies of each actor
    are additionally chained into a cycle with one token, forbidding
    auto-concurrent firings of the same actor (the sequential-actor
    semantics of an actual task implementation).
    @return [Error msg] on an inconsistent graph. *)
val expand : ?serialize:bool -> t -> (expansion, string) Stdlib.result

(** [iteration_period t] is the minimal period of one full graph
    iteration (every actor [a] firing [q(a)] times): the maximum cycle
    ratio of the expansion scaled to iterations.  [Error] when the
    graph is inconsistent or deadlocked. *)
val iteration_period : ?serialize:bool -> t -> (float, string) Stdlib.result
