(** Parser for a textual (C)SDF description.

    Line-oriented, [#] comments.  Actors declare one duration per
    phase; channels declare per-phase production and consumption rates
    as comma-separated lists (a single number means a single-rate /
    single-phase endpoint):

    {v
    actor cd durations 2
    actor filt durations 6,3
    channel cd 1 -> filt 1,0 initial 2
    v}

    Everything parses into a {!Csdf.t} (plain SDF is the one-phase
    special case). *)

exception Parse_error of int * string

(** [of_string text] parses a CSDF graph.
    @raise Parse_error with a 1-based line number on malformed input. *)
val of_string : string -> Csdf.t * (string -> Csdf.actor)
(** Returns the graph and a name-based actor lookup.
    @raise Not_found from the lookup for unknown names. *)

(** [of_string_result text] is the total form of {!of_string}:
    arbitrary bytes parse to [Ok] or to [Error (line, message)] — no
    exception escapes, whatever the input.  Line 0 marks a failure
    outside the designed [Parse_error] channel. *)
val of_string_result :
  string -> (Csdf.t * (string -> Csdf.actor), int * string) Stdlib.result

(** [of_file path] reads and parses a file.
    @raise Sys_error when unreadable.
    @raise Parse_error on malformed input. *)
val of_file : string -> Csdf.t * (string -> Csdf.actor)
