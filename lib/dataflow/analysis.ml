type mcr_result = Mcr of float | Deadlocked | Acyclic

let token_fun g e = float_of_int (Srdf.tokens g e)

(* Bellman–Ford longest-path on the constraint graph with edge weights
   w(eij) = ρ(vi) − δ(eij)·period.  All potentials start at 0 (a virtual
   source into every actor), so feasibility of the difference system is
   exactly the absence of a positive-weight cycle. *)
let longest_path_potentials ?tokens g ~period =
  if period <= 0.0 then invalid_arg "Analysis: period must be > 0";
  let tokens = match tokens with Some f -> f | None -> token_fun g in
  let n = Srdf.num_actors g in
  let edge_list =
    List.map
      (fun e ->
        let src = Srdf.actor_id (Srdf.edge_src g e)
        and dst = Srdf.actor_id (Srdf.edge_dst g e) in
        let w = Srdf.duration g (Srdf.edge_src g e) -. (tokens e *. period) in
        (e, src, dst, w))
      (Srdf.edges g)
  in
  let scale =
    List.fold_left (fun acc (_, _, _, w) -> Float.max acc (Float.abs w)) 1.0
      edge_list
  in
  let eps = 1e-9 *. scale in
  let d = Array.make n 0.0 in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n do
    changed := false;
    incr rounds;
    List.iter
      (fun (_, src, dst, w) ->
        if d.(src) +. w > d.(dst) +. eps then begin
          d.(dst) <- d.(src) +. w;
          changed := true
        end)
      edge_list
  done;
  if !changed then None (* positive cycle: relaxation did not settle *)
  else Some d

let pas_exists ?tokens g ~period =
  match longest_path_potentials ?tokens g ~period with
  | Some _ -> true
  | None -> false

let pas_start_times ?tokens g ~period = longest_path_potentials ?tokens g ~period

(* Cycle detection ignoring weights: does the graph contain any cycle at
   all, and any cycle of zero total tokens with positive total duration? *)
let has_cycle g =
  let n = Srdf.num_actors g in
  let adj = Array.make n [] in
  List.iter
    (fun e ->
      let s = Srdf.actor_id (Srdf.edge_src g e) in
      adj.(s) <- Srdf.actor_id (Srdf.edge_dst g e) :: adj.(s))
    (Srdf.edges g);
  let state = Array.make n 0 (* 0 unvisited, 1 on stack, 2 done *) in
  let rec visit v =
    if state.(v) = 1 then true
    else if state.(v) = 2 then false
    else begin
      state.(v) <- 1;
      let found = List.exists visit adj.(v) in
      state.(v) <- 2;
      found
    end
  in
  List.exists (fun v -> visit (Srdf.actor_id v)) (Srdf.actors g)

(* A zero-token cycle makes every period infeasible when it has positive
   duration (and even zero-duration zero-token cycles deadlock an actual
   execution, so we flag them all).  Detected by restricting the graph
   to zero-token edges. *)
let has_zero_token_cycle tokens g =
  let n = Srdf.num_actors g in
  let adj = Array.make n [] in
  List.iter
    (fun e ->
      if tokens e <= 0.0 then begin
        let s = Srdf.actor_id (Srdf.edge_src g e) in
        adj.(s) <- Srdf.actor_id (Srdf.edge_dst g e) :: adj.(s)
      end)
    (Srdf.edges g);
  let state = Array.make n 0 in
  let rec visit v =
    if state.(v) = 1 then true
    else if state.(v) = 2 then false
    else begin
      state.(v) <- 1;
      let found = List.exists visit adj.(v) in
      state.(v) <- 2;
      found
    end
  in
  List.exists (fun v -> visit (Srdf.actor_id v)) (Srdf.actors g)

let classify ?tokens g =
  let tokens = match tokens with Some f -> f | None -> token_fun g in
  if not (has_cycle g) then `Acyclic
  else if has_zero_token_cycle tokens g then `Deadlocked
  else `Cyclic

let max_cycle_ratio ?tokens ?(eps = 1e-12) g =
  let tokens = match tokens with Some f -> f | None -> token_fun g in
  if not (has_cycle g) then Acyclic
  else if has_zero_token_cycle tokens g then Deadlocked
  else begin
    (* Any cycle ratio is at most Σρ / min positive token count ≥ 1
       token, and at least 0; bisect feasibility of the PAS test. *)
    let total_duration =
      List.fold_left
        (fun acc v -> acc +. Srdf.duration g v)
        0.0 (Srdf.actors g)
    in
    let hi0 = Float.max total_duration 1e-9 in
    (* A period equal to hi0 is always feasible (every cycle has ≥ 1
       token, hence ratio ≤ total duration); tighten from there. *)
    let rec bisect lo hi iters =
      if iters = 0 || hi -. lo <= eps *. Float.max 1.0 hi then hi
      else begin
        let mid = 0.5 *. (lo +. hi) in
        if mid <= 0.0 then hi
        else if pas_exists ~tokens g ~period:mid then bisect lo mid (iters - 1)
        else bisect mid hi (iters - 1)
      end
    in
    Mcr (bisect 0.0 hi0 200)
  end

type self_timed = { starts : float array array; measured_period : float }

let self_timed ?(iterations = 100) g =
  let n = Srdf.num_actors g in
  if n = 0 then Ok { starts = [||]; measured_period = 0.0 }
  else begin
    let tokens = Srdf.tokens g in
    if has_zero_token_cycle (fun e -> float_of_int (tokens e)) g then
      Error "zero-token cycle: the graph deadlocks"
    else begin
      let edge_list =
        List.map
          (fun e ->
            ( Srdf.actor_id (Srdf.edge_src g e),
              Srdf.actor_id (Srdf.edge_dst g e),
              Srdf.tokens g e,
              Srdf.duration g (Srdf.edge_src g e) ))
          (Srdf.edges g)
      in
      let starts = Array.make_matrix iterations n 0.0 in
      (* Firing k of the consumer waits for firing (k − δ) of the
         producer to finish.  Zero-token edges create intra-iteration
         dependencies, resolved by fixpoint passes (at most n are
         needed since the zero-token subgraph is acyclic here). *)
      for k = 0 to iterations - 1 do
        if k > 0 then Array.blit starts.(k - 1) 0 starts.(k) 0 n;
        let pass = ref 0 and changed = ref true in
        while !changed do
          changed := false;
          incr pass;
          if !pass > n + 1 then failwith "self_timed: fixpoint diverged";
          List.iter
            (fun (src, dst, toks, dur) ->
              let dep = k - toks in
              if dep >= 0 then begin
                let ready = starts.(dep).(src) +. dur in
                if ready > starts.(k).(dst) +. 1e-12 then begin
                  starts.(k).(dst) <- ready;
                  changed := true
                end
              end)
            edge_list
        done
      done;
      let measured_period =
        if iterations < 4 then 0.0
        else begin
          let k1 = iterations / 2 and k2 = iterations - 1 in
          let window = float_of_int (k2 - k1) in
          let worst = ref 0.0 in
          for v = 0 to n - 1 do
            let p = (starts.(k2).(v) -. starts.(k1).(v)) /. window in
            if p > !worst then worst := p
          done;
          !worst
        end
      in
      Ok { starts; measured_period }
    end
  end

let check_schedule ?tokens g ~period s =
  let tokens = match tokens with Some f -> f | None -> token_fun g in
  if Array.length s <> Srdf.num_actors g then
    invalid_arg "Analysis.check_schedule: wrong schedule length";
  List.filter
    (fun e ->
      let i = Srdf.actor_id (Srdf.edge_src g e)
      and j = Srdf.actor_id (Srdf.edge_dst g e) in
      let lhs = s.(j)
      and rhs =
        s.(i) +. Srdf.duration g (Srdf.edge_src g e) -. (tokens e *. period)
      in
      lhs < rhs -. 1e-9 *. Float.max 1.0 (Float.abs rhs))
    (Srdf.edges g)
