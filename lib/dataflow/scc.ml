type t = { graph : Srdf.t; comp : int array; comps : int list array }

(* Iterative Tarjan: an explicit stack of (vertex, next-edge-index)
   frames replaces the recursion. *)
let compute g =
  let n = Srdf.num_actors g in
  let adj = Array.make n [] in
  List.iter
    (fun e ->
      let s = Srdf.actor_id (Srdf.edge_src g e) in
      adj.(s) <- Srdf.actor_id (Srdf.edge_dst g e) :: adj.(s))
    (Srdf.edges g);
  let adj = Array.map Array.of_list adj in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let comp = Array.make n (-1) in
  let ncomps = ref 0 in
  let counter = ref 0 in
  let start_root root =
    if index.(root) < 0 then begin
      let frames = ref [ (root, ref 0) ] in
      index.(root) <- !counter;
      lowlink.(root) <- !counter;
      incr counter;
      stack := root :: !stack;
      on_stack.(root) <- true;
      while !frames <> [] do
        match !frames with
        | [] -> ()
        | (v, next) :: rest ->
          if !next < Array.length adj.(v) then begin
            let w = adj.(v).(!next) in
            incr next;
            if index.(w) < 0 then begin
              index.(w) <- !counter;
              lowlink.(w) <- !counter;
              incr counter;
              stack := w :: !stack;
              on_stack.(w) <- true;
              frames := (w, ref 0) :: !frames
            end
            else if on_stack.(w) then
              lowlink.(v) <- Int.min lowlink.(v) index.(w)
          end
          else begin
            (* v is finished: pop the frame, update the parent, and
               emit a component when v is a root. *)
            frames := rest;
            (match rest with
            | (parent, _) :: _ ->
              lowlink.(parent) <- Int.min lowlink.(parent) lowlink.(v)
            | [] -> ());
            if lowlink.(v) = index.(v) then begin
              let stop = ref false in
              while not !stop do
                match !stack with
                | [] -> stop := true
                | w :: tail ->
                  stack := tail;
                  on_stack.(w) <- false;
                  comp.(w) <- !ncomps;
                  if w = v then stop := true
              done;
              incr ncomps
            end
          end
      done
    end
  in
  for v = 0 to n - 1 do
    start_root v
  done;
  (* Component indices follow Tarjan emission order, which is a reverse
     topological order of the condensation. *)
  let comps = Array.make (Int.max 1 !ncomps) [] in
  Array.iteri (fun v c -> if c >= 0 then comps.(c) <- v :: comps.(c)) comp;
  { graph = g; comp; comps }

let count t =
  Array.fold_left (fun acc c -> Int.max acc (c + 1)) 0 t.comp

let component_of t v = t.comp.(Srdf.actor_id v)

let components t =
  Array.to_list (Array.sub t.comps 0 (count t))
  |> List.map (List.map (Srdf.actor_of_id t.graph))

let internal_edges t g c =
  List.filter
    (fun e ->
      t.comp.(Srdf.actor_id (Srdf.edge_src g e)) = c
      && t.comp.(Srdf.actor_id (Srdf.edge_dst g e)) = c)
    (Srdf.edges g)

let is_trivial t g c =
  match t.comps.(c) with
  | [ v ] ->
    not
      (List.exists
         (fun e ->
           Srdf.actor_id (Srdf.edge_src g e) = v
           && Srdf.actor_id (Srdf.edge_dst g e) = v)
         (Srdf.edges g))
  | _ :: _ :: _ | [] -> false
