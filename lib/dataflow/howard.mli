(** Howard's policy-iteration algorithm for the maximum cycle ratio.

    An alternative to the binary search of {!Analysis.max_cycle_ratio}:
    instead of O(log(1/ε)) Bellman–Ford feasibility checks, it
    iteratively improves a "policy" (one outgoing edge per actor) whose
    policy graph's worst cycle converges to the maximum cycle ratio.
    In practice it needs only a handful of iterations, which is why
    tools like SDF3 use it; here it serves both as the fast path and as
    an independent implementation the binary search is cross-validated
    against (see the [mcr] bench ablation).

    Both methods agree on the same {!Analysis.mcr_result}
    classification: the MCR is the smallest period admitting a periodic
    schedule. *)

(** [max_cycle_ratio ?tokens ?eps g] computes the maximum over all
    cycles of (total firing duration) / (total tokens).
    [eps] (default 1e-9) is the improvement threshold of the policy
    iteration; [tokens] overrides the token counts (the continuous δ′
    relaxation), like in {!Analysis}. *)
val max_cycle_ratio :
  ?tokens:(Srdf.edge -> float) -> ?eps:float -> Srdf.t -> Analysis.mcr_result

(** [critical_cycle ?tokens ?eps g] additionally returns the actors of
    a cycle attaining the maximum ratio — the {e critical cycle} whose
    firing durations and tokens bound the graph's throughput.  [None]
    when the graph is acyclic or deadlocked. *)
val critical_cycle :
  ?tokens:(Srdf.edge -> float) -> ?eps:float -> Srdf.t ->
  (float * Srdf.actor list) option
