type actor = int
type channel = int

type actor_info = { name : string; duration : float }

type channel_info = {
  src : actor;
  production : int;
  dst : actor;
  consumption : int;
  initial : int;
}

type t = {
  mutable actor_infos : actor_info list; (* reversed *)
  mutable nactors : int;
  mutable channel_infos : channel_info list; (* reversed *)
  mutable nchannels : int;
}

let create () =
  { actor_infos = []; nactors = 0; channel_infos = []; nchannels = 0 }

let add_actor t ~name ~duration =
  if duration < 0.0 || not (Float.is_finite duration) then
    invalid_arg "Sdf.add_actor: duration must be finite and >= 0";
  let a = t.nactors in
  t.actor_infos <- { name; duration } :: t.actor_infos;
  t.nactors <- a + 1;
  a

let check_actor t a =
  if a < 0 || a >= t.nactors then invalid_arg "Sdf: unknown actor"

let add_channel t ~src ~production ~dst ~consumption ?(initial_tokens = 0) ()
    =
  check_actor t src;
  check_actor t dst;
  if production <= 0 || consumption <= 0 then
    invalid_arg "Sdf.add_channel: rates must be > 0";
  if initial_tokens < 0 then
    invalid_arg "Sdf.add_channel: initial tokens must be >= 0";
  let c = t.nchannels in
  t.channel_infos <-
    { src; production; dst; consumption; initial = initial_tokens }
    :: t.channel_infos;
  t.nchannels <- c + 1;
  c

let num_actors t = t.nactors
let actors t = List.init t.nactors Fun.id
let num_channels t = t.nchannels

let actor_infos t = Array.of_list (List.rev t.actor_infos)
let channel_infos t = Array.of_list (List.rev t.channel_infos)

let actor_name t a =
  check_actor t a;
  (actor_infos t).(a).name

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let lcm a b = a / gcd a b * b

(* Solve the balance equations by propagating rational firing counts
   over the channels (BFS per connected component), then scaling each
   component to the smallest positive integer vector. *)
let repetition_vector t =
  let n = t.nactors in
  if n = 0 then Ok (fun _ -> invalid_arg "Sdf: unknown actor")
  else begin
    let chans = channel_infos t in
    (* q(a) stored as a rational num/den, or None when unvisited. *)
    let num = Array.make n 0 and den = Array.make n 0 in
    let adj = Array.make n [] in
    Array.iter
      (fun ch ->
        adj.(ch.src) <- (ch.dst, ch.production, ch.consumption) :: adj.(ch.src);
        adj.(ch.dst) <- (ch.src, ch.consumption, ch.production) :: adj.(ch.dst))
      chans;
    let normalise a =
      let g = gcd (abs num.(a)) (abs den.(a)) in
      if g > 1 then begin
        num.(a) <- num.(a) / g;
        den.(a) <- den.(a) / g
      end
    in
    let inconsistent = ref false in
    for root = 0 to n - 1 do
      if den.(root) = 0 then begin
        num.(root) <- 1;
        den.(root) <- 1;
        let queue = Queue.create () in
        Queue.add root queue;
        while not (Queue.is_empty queue) do
          let a = Queue.take queue in
          List.iter
            (fun (b, rate_a, rate_b) ->
              (* rate_a·q(a) = rate_b·q(b) ⟹ q(b) = q(a)·rate_a/rate_b *)
              let nb = num.(a) * rate_a and db = den.(a) * rate_b in
              if den.(b) = 0 then begin
                num.(b) <- nb;
                den.(b) <- db;
                normalise b;
                Queue.add b queue
              end
              else if num.(b) * db <> nb * den.(b) then inconsistent := true)
            adj.(a)
        done
      end
    done;
    if !inconsistent then
      Error "inconsistent SDF graph: the balance equations have no solution"
    else begin
      (* Scale to integers: multiply by the lcm of denominators, divide
         by the gcd of numerators, per connected component.  Components
         were seeded independently so a global scaling is also fine for
         minimality per component: do it per component via another BFS
         colouring. *)
      let comp = Array.make n (-1) in
      let ncomp = ref 0 in
      for root = 0 to n - 1 do
        if comp.(root) < 0 then begin
          let queue = Queue.create () in
          comp.(root) <- !ncomp;
          Queue.add root queue;
          while not (Queue.is_empty queue) do
            let a = Queue.take queue in
            List.iter
              (fun (b, _, _) ->
                if comp.(b) < 0 then begin
                  comp.(b) <- !ncomp;
                  Queue.add b queue
                end)
              adj.(a)
          done;
          incr ncomp
        end
      done;
      let q = Array.make n 0 in
      for c = 0 to !ncomp - 1 do
        let members =
          List.filter (fun a -> comp.(a) = c) (List.init n Fun.id)
        in
        let l = List.fold_left (fun acc a -> lcm acc den.(a)) 1 members in
        List.iter (fun a -> q.(a) <- num.(a) * (l / den.(a))) members;
        let g =
          List.fold_left (fun acc a -> gcd acc q.(a)) 0 members
        in
        if g > 1 then List.iter (fun a -> q.(a) <- q.(a) / g) members
      done;
      Ok
        (fun a ->
          check_actor t a;
          q.(a))
    end
  end

type expansion = {
  srdf : Srdf.t;
  copy : actor -> int -> Srdf.actor;
  repetitions : actor -> int;
}

let floor_div a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)
let ceil_div a b = -floor_div (-a) b
let emod a b = ((a mod b) + b) mod b

let expand ?(serialize = false) t =
  match repetition_vector t with
  | Error _ as e -> e
  | Ok q ->
    let infos = actor_infos t in
    let srdf = Srdf.create () in
    let copies =
      Array.mapi
        (fun a info ->
          Array.init (q a) (fun k ->
              Srdf.add_actor srdf
                ~name:(Printf.sprintf "%s#%d" info.name (k + 1))
                ~duration:info.duration))
        infos
    in
    if serialize then
      Array.iter
        (fun arr ->
          let qn = Array.length arr in
          if qn > 1 then
            for k = 0 to qn - 1 do
              (* Chain copy k → k+1, closing the cycle with one token so
                 at most one firing of the actor is in flight. *)
              ignore
                (Srdf.add_edge srdf ~src:arr.(k)
                   ~dst:arr.((k + 1) mod qn)
                   ~tokens:(if k = qn - 1 then 1 else 0))
            done)
        copies;
    (* Channel dependencies: the j-th token consumed by the l-th firing
       of dst was produced by firing k′ of src (or is initial when
       k′ ≤ 0); decomposing k′ into (iteration, copy) gives the SRDF
       edge and its token count (= iteration distance). *)
    Array.iter
      (fun ch ->
        let qa = q ch.src and qb = q ch.dst in
        (* Deduplicate: keep the smallest token count per copy pair. *)
        let bests = Hashtbl.create 16 in
        for l = 1 to qb do
          for j = 1 to ch.consumption do
            let n_tok = (ch.consumption * (l - 1)) + j in
            let k' = ceil_div (n_tok - ch.initial) ch.production in
            let s = emod (k' - 1) qa + 1 in
            let it = ((k' - s) / qa) + 1 in
            let delta = 1 - it in
            assert (delta >= 0);
            let key = (s, l) in
            match Hashtbl.find_opt bests key with
            | Some d when d <= delta -> ()
            | Some _ | None -> Hashtbl.replace bests key delta
          done
        done;
        Hashtbl.iter
          (fun (s, l) delta ->
            ignore
              (Srdf.add_edge srdf
                 ~src:copies.(ch.src).(s - 1)
                 ~dst:copies.(ch.dst).(l - 1)
                 ~tokens:delta))
          bests)
      (channel_infos t);
    Ok
      {
        srdf;
        copy =
          (fun a k ->
            check_actor t a;
            if k < 1 || k > q a then invalid_arg "Sdf.expansion.copy: range"
            else copies.(a).(k - 1));
        repetitions = q;
      }

let iteration_period ?serialize t =
  match expand ?serialize t with
  | Error _ as e -> e
  | Ok { srdf; _ } -> begin
    match Howard.max_cycle_ratio srdf with
    | Analysis.Mcr r -> Ok r
    | Analysis.Acyclic -> Ok 0.0
    | Analysis.Deadlocked ->
      Error "deadlocked SDF graph: a cycle has too few initial tokens"
  end
