(* Howard's policy iteration for the maximum cycle ratio, run per
   strongly connected component.

   Within a component, a policy picks one outgoing edge per actor; the
   policy graph is functional, so every actor reaches exactly one
   cycle.  Evaluation assigns each actor the ratio η of its cycle and a
   relative value v; improvement first moves actors toward cycles with
   larger η, then (among equal η) toward larger reduced value
   w(e) − η·t(e) + v(dst).  At a fixed point, max η over the component
   is its maximum cycle ratio (Cochet-Terrasson et al. 1998; Dasdan's
   experimental study 2004). *)

let run ?tokens ?(eps = 1e-9) g =
  let tokens = match tokens with Some f -> f | None -> Analysis.token_fun g in
  match Analysis.classify ~tokens g with
  | `Acyclic -> `Acyclic
  | `Deadlocked -> `Deadlocked
  | `Cyclic ->
    let scc = Scc.compute g in
    let best = ref 0.0 in
    let best_cycle = ref [] in
    for c = 0 to Scc.count scc - 1 do
      if not (Scc.is_trivial scc g c) then begin
        (* Local dense indexing of the component. *)
        let members =
          List.filter
            (fun v -> Scc.component_of scc (Srdf.actor_of_id g v) = c)
            (List.map Srdf.actor_id (Srdf.actors g))
        in
        let n = List.length members in
        let local = Hashtbl.create n in
        List.iteri (fun i v -> Hashtbl.replace local v i) members;
        (* Outgoing internal edges per local node: (dst, w, t). *)
        let out = Array.make n [] in
        List.iter
          (fun e ->
            let u = Hashtbl.find local (Srdf.actor_id (Srdf.edge_src g e)) in
            let x = Hashtbl.find local (Srdf.actor_id (Srdf.edge_dst g e)) in
            let w = Srdf.duration g (Srdf.edge_src g e) in
            out.(u) <- (x, w, tokens e) :: out.(u))
          (Scc.internal_edges scc g c);
        (* Initial policy: the heaviest outgoing edge. *)
        let policy = Array.make n (-1, 0.0, 0.0) in
        for u = 0 to n - 1 do
          match out.(u) with
          | [] -> assert false (* non-trivial SCC: every node has out-edges *)
          | first :: rest ->
            policy.(u) <-
              List.fold_left
                (fun ((_, bw, _) as acc) ((_, w, _) as cand) ->
                  if w > bw then cand else acc)
                first rest
        done;
        let eta = Array.make n 0.0 and value = Array.make n 0.0 in
        let evaluate () =
          (* Find, for every node, the policy cycle it reaches; compute
             η on cycles and propagate v backwards through the trees. *)
          let state = Array.make n 0 (* 0 fresh, 1 on path, 2 done *) in
          for start = 0 to n - 1 do
            if state.(start) = 0 then begin
              (* Walk the functional graph recording the path. *)
              let path = ref [] in
              let u = ref start in
              while state.(!u) = 0 do
                state.(!u) <- 1;
                path := !u :: !path;
                let nxt, _, _ = policy.(!u) in
                u := nxt
              done;
              if state.(!u) = 1 then begin
                (* Found a fresh cycle through !u: collect it. *)
                let cycle = ref [] and sum_w = ref 0.0 and sum_t = ref 0.0 in
                let v = ref !u in
                let continue_ = ref true in
                while !continue_ do
                  let nxt, w, t = policy.(!v) in
                  cycle := !v :: !cycle;
                  sum_w := !sum_w +. w;
                  sum_t := !sum_t +. t;
                  v := nxt;
                  if !v = !u then continue_ := false
                done;
                let lambda = !sum_w /. !sum_t in
                (* Values around the cycle: root value 0, then
                   backwards v(prev) = w − λ·t + v(node). *)
                let cycle_nodes = !cycle (* reversed forward order *) in
                (* cycle_nodes = [prev(u); ...; u] following the walk
                   backwards; assign iteratively. *)
                List.iter
                  (fun node ->
                    eta.(node) <- lambda;
                    state.(node) <- 2)
                  cycle_nodes;
                value.(!u) <- 0.0;
                (* Walk the cycle forward once more to fix values:
                   v(x) where π(x) = y gives v(x) = rew(x) + v(y);
                   processing nodes in reverse forward order makes each
                   v available when needed (v(u) = 0 anchors it). *)
                List.iter
                  (fun node ->
                    if node <> !u then begin
                      let nxt, w, t = policy.(node) in
                      value.(node) <- w -. (lambda *. t) +. value.(nxt)
                    end)
                  cycle_nodes
              end;
              (* Nodes on the path but not on the cycle: propagate from
                 their successor (which is done by now when walking the
                 path in reverse). *)
              List.iter
                (fun node ->
                  if state.(node) <> 2 then begin
                    let nxt, w, t = policy.(node) in
                    eta.(node) <- eta.(nxt);
                    value.(node) <- w -. (eta.(nxt) *. t) +. value.(nxt);
                    state.(node) <- 2
                  end)
                !path
            end
          done
        in
        let improve () =
          let changed = ref false in
          (* Stage 1: move toward cycles with a strictly larger η. *)
          for u = 0 to n - 1 do
            List.iter
              (fun ((x, _, _) as e) ->
                if eta.(x) > eta.(u) +. eps then begin
                  policy.(u) <- e;
                  changed := true
                end)
              out.(u)
          done;
          if not !changed then
            (* Stage 2: among equal η, improve the reduced value. *)
            for u = 0 to n - 1 do
              List.iter
                (fun ((x, w, t) as e) ->
                  if
                    Float.abs (eta.(x) -. eta.(u)) <= eps
                    && w -. (eta.(u) *. t) +. value.(x)
                       > value.(u) +. eps *. Float.max 1.0 (Float.abs value.(u))
                  then begin
                    policy.(u) <- e;
                    changed := true
                  end)
                out.(u)
            done;
          !changed
        in
        let max_iter = 50 * (n + 1) in
        let rec loop i =
          evaluate ();
          if improve () && i < max_iter then loop (i + 1)
        in
        loop 0;
        (* The critical cycle is the policy cycle reached from the node
           with the largest η. *)
        let members_arr = Array.of_list members in
        let best_u = ref 0 in
        Array.iteri (fun u lam -> if lam > eta.(!best_u) then best_u := u) eta;
        if eta.(!best_u) > !best then begin
          best := eta.(!best_u);
          (* Walk the policy from best_u until a node repeats, then cut
             the prefix before the repeated node. *)
          let seen = Hashtbl.create n in
          let rec walk u order =
            if Hashtbl.mem seen u then (u, List.rev order)
            else begin
              Hashtbl.replace seen u ();
              let nxt, _, _ = policy.(u) in
              walk nxt (u :: order)
            end
          in
          let entry, order = walk !best_u [] in
          let rec drop = function
            | [] -> []
            | u :: rest -> if u = entry then u :: rest else drop rest
          in
          best_cycle :=
            List.map
              (fun u -> Srdf.actor_of_id g members_arr.(u))
              (drop order)
        end
      end
    done;
    `Mcr (!best, !best_cycle)

let max_cycle_ratio ?tokens ?eps g =
  match run ?tokens ?eps g with
  | `Acyclic -> Analysis.Acyclic
  | `Deadlocked -> Analysis.Deadlocked
  | `Mcr (r, _) -> Analysis.Mcr r

let critical_cycle ?tokens ?eps g =
  match run ?tokens ?eps g with
  | `Acyclic | `Deadlocked -> None
  | `Mcr (r, cycle) -> Some (r, cycle)
