(** Temporal analysis of SRDF graphs.

    The key fact (Reiter 1968, recalled as Constraint (1) of the paper)
    is that a periodic admissible schedule (PAS) with period [µ] exists
    iff the difference-constraint system

    {v s(vj) ≥ s(vi) + ρ(vi) − δ(eij)·µ        for every queue eij v}

    is feasible, i.e. iff the constraint graph has no cycle of positive
    weight.  Equivalently, a PAS with period [µ] exists iff [µ] is at
    least the maximum cycle ratio (MCR)
    [max over cycles C of (Σ_{v∈C} ρ(v)) / (Σ_{e∈C} δ(e))].

    Token counts may be overridden with real values — the paper's
    continuous relaxation [δ′] — via the [tokens] argument. *)

(** Classification of a graph's throughput behaviour. *)
type mcr_result =
  | Mcr of float
      (** the maximum cycle ratio; the minimum feasible PAS period *)
  | Deadlocked
      (** some cycle carries zero tokens (and positive duration): no
          schedule exists for any period *)
  | Acyclic  (** no cycles: every positive period admits a PAS *)

(** [token_fun g] is the default token function reading [Srdf.tokens]. *)
val token_fun : Srdf.t -> Srdf.edge -> float

(** [classify ?tokens g] is the structural precondition shared by every
    MCR method: [`Deadlocked] when some cycle carries no tokens,
    [`Acyclic] when the graph has no cycle at all, [`Cyclic]
    otherwise. *)
val classify :
  ?tokens:(Srdf.edge -> float) -> Srdf.t ->
  [ `Deadlocked | `Acyclic | `Cyclic ]

(** [pas_exists ?tokens g ~period] checks whether a PAS with the given
    period exists (Bellman–Ford positive-cycle detection).
    @raise Invalid_argument if [period <= 0]. *)
val pas_exists : ?tokens:(Srdf.edge -> float) -> Srdf.t -> period:float -> bool

(** [pas_start_times ?tokens g ~period] returns start times [s] (indexed
    by {!Srdf.actor_id}) realising a PAS with the given period, or
    [None] if none exists.  The returned schedule satisfies
    [s.(j) ≥ s.(i) + ρ(i) − δ(eij)·period] for every queue. *)
val pas_start_times :
  ?tokens:(Srdf.edge -> float) -> Srdf.t -> period:float -> float array option

(** [max_cycle_ratio ?tokens ?eps g] computes the MCR by binary search
    over Bellman–Ford feasibility checks; [eps] is the relative
    precision of the search (default 1e-12). *)
val max_cycle_ratio :
  ?tokens:(Srdf.edge -> float) -> ?eps:float -> Srdf.t -> mcr_result

(** Self-timed (as-soon-as-possible) execution of the graph. *)
type self_timed = {
  starts : float array array;
      (** [starts.(k).(v)] is the start time of firing [k+1] of actor
          [v] under ASAP execution *)
  measured_period : float;
      (** average per-iteration advance of the slowest actor over the
          second half of the run — converges to the MCR for live
          strongly-connected graphs *)
}

(** [self_timed ?iterations g] simulates [iterations] firings of every
    actor (default 100).
    @return [Error reason] when the graph deadlocks (a zero-token cycle
    is hit). *)
val self_timed : ?iterations:int -> Srdf.t -> (self_timed, string) result

(** [check_schedule ?tokens g ~period s] verifies that start times [s]
    satisfy Constraint (1) for every queue, within tolerance [1e-9];
    returns the list of violated queues (empty when the schedule is
    admissible).  Useful as an independent certificate check. *)
val check_schedule :
  ?tokens:(Srdf.edge -> float) ->
  Srdf.t ->
  period:float ->
  float array ->
  Srdf.edge list
