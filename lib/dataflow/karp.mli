(** Karp's algorithm for the maximum cycle mean, and the classic
    delay-element reduction from maximum cycle ratio to maximum cycle
    mean.

    Karp (1978) computes [max over cycles of Σweight/|C|] exactly in
    O(V·E) using the table of maximum k-edge path weights.  The cycle
    {e ratio} [Σρ/Σδ] of an SRDF graph reduces to a cycle mean on the
    graph of its {e delay elements}: every token becomes one edge, and
    zero-token paths are contracted into longest-path weights between
    the tokens they connect.  This gives a third MCR implementation —
    exact like the binary search, division-free like Howard — used to
    cross-validate both ({!Analysis.max_cycle_ratio},
    {!Howard.max_cycle_ratio}). *)

(** [max_cycle_mean ~num_vertices ~edges] computes
    [max over cycles of (Σ weight) / (number of edges)] of the directed
    multigraph given as [(src, dst, weight)] triples; [None] when the
    graph is acyclic.
    @raise Invalid_argument on out-of-range endpoints. *)
val max_cycle_mean :
  num_vertices:int -> edges:(int * int * float) list -> float option

(** [max_cycle_ratio g] computes the maximum cycle ratio of [g] using
    the delay-element reduction and {!max_cycle_mean}.  Uses the
    graph's integral token counts (the continuous [δ′] relaxation does
    not apply to this method). *)
val max_cycle_ratio : Srdf.t -> Analysis.mcr_result
