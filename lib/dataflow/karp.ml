(* Karp's maximum-cycle-mean algorithm and the delay-element reduction
   from cycle ratio to cycle mean. *)

let neg_inf = neg_infinity

(* Strongly connected components of a generic edge list (iterative
   Tarjan, local to this module since {!Scc} is typed to SRDF graphs). *)
let generic_sccs ~num_vertices ~edges =
  let adj = Array.make num_vertices [] in
  List.iter (fun (s, d, _) -> adj.(s) <- d :: adj.(s)) edges;
  let index = Array.make num_vertices (-1) in
  let lowlink = Array.make num_vertices 0 in
  let on_stack = Array.make num_vertices false in
  let stack = ref [] in
  let comp = Array.make num_vertices (-1) in
  let ncomp = ref 0 in
  let counter = ref 0 in
  for root = 0 to num_vertices - 1 do
    if index.(root) < 0 then begin
      let frames = ref [ (root, ref adj.(root)) ] in
      index.(root) <- !counter;
      lowlink.(root) <- !counter;
      incr counter;
      stack := root :: !stack;
      on_stack.(root) <- true;
      while !frames <> [] do
        match !frames with
        | [] -> ()
        | (v, rest) :: tail -> begin
          match !rest with
          | w :: more ->
            rest := more;
            if index.(w) < 0 then begin
              index.(w) <- !counter;
              lowlink.(w) <- !counter;
              incr counter;
              stack := w :: !stack;
              on_stack.(w) <- true;
              frames := (w, ref adj.(w)) :: !frames
            end
            else if on_stack.(w) then
              lowlink.(v) <- Int.min lowlink.(v) index.(w)
          | [] ->
            frames := tail;
            (match tail with
            | (parent, _) :: _ ->
              lowlink.(parent) <- Int.min lowlink.(parent) lowlink.(v)
            | [] -> ());
            if lowlink.(v) = index.(v) then begin
              let stop = ref false in
              while not !stop do
                match !stack with
                | [] -> stop := true
                | w :: t ->
                  stack := t;
                  on_stack.(w) <- false;
                  comp.(w) <- !ncomp;
                  if w = v then stop := true
              done;
              incr ncomp
            end
        end
      done
    end
  done;
  (comp, !ncomp)

let max_cycle_mean ~num_vertices ~edges =
  List.iter
    (fun (s, d, _) ->
      if s < 0 || s >= num_vertices || d < 0 || d >= num_vertices then
        invalid_arg "Karp.max_cycle_mean: endpoint out of range")
    edges;
  if num_vertices = 0 then None
  else begin
    let comp, ncomp = generic_sccs ~num_vertices ~edges in
    let best = ref None in
    for c = 0 to ncomp - 1 do
      (* Local indexing of the component. *)
      let members =
        List.filter (fun v -> comp.(v) = c) (List.init num_vertices Fun.id)
      in
      let n = List.length members in
      let local = Hashtbl.create n in
      List.iteri (fun i v -> Hashtbl.replace local v i) members;
      let ledges =
        List.filter_map
          (fun (s, d, w) ->
            if comp.(s) = c && comp.(d) = c then
              Some (Hashtbl.find local s, Hashtbl.find local d, w)
            else None)
          edges
      in
      if ledges <> [] then begin
        (* Karp table: d.(k).(v) = max weight of a k-edge walk from the
           root to v inside the component. *)
        let d = Array.make_matrix (n + 1) n neg_inf in
        d.(0).(0) <- 0.0;
        for k = 1 to n do
          List.iter
            (fun (s, t, w) ->
              if d.(k - 1).(s) > neg_inf then
                d.(k).(t) <- Float.max d.(k).(t) (d.(k - 1).(s) +. w))
            ledges
        done;
        for v = 0 to n - 1 do
          if d.(n).(v) > neg_inf then begin
            let worst = ref infinity in
            for k = 0 to n - 1 do
              if d.(k).(v) > neg_inf then
                worst :=
                  Float.min !worst
                    ((d.(n).(v) -. d.(k).(v)) /. float_of_int (n - k))
            done;
            if Float.is_finite !worst then
              best :=
                Some
                  (match !best with
                  | None -> !worst
                  | Some b -> Float.max b !worst)
          end
        done
      end
    done;
    !best
  end

(* Longest path weights over the zero-token subgraph (a DAG once
   deadlock has been excluded), from [source] to every vertex; weights
   are the constraint-graph edge weights w(e) = ρ(src(e)). *)
let zero_longest_paths g source =
  let n = Srdf.num_actors g in
  let adj = Array.make n [] in
  List.iter
    (fun e ->
      if Srdf.tokens g e = 0 then begin
        let s = Srdf.actor_id (Srdf.edge_src g e) in
        let d = Srdf.actor_id (Srdf.edge_dst g e) in
        adj.(s) <- (d, Srdf.duration g (Srdf.edge_src g e)) :: adj.(s)
      end)
    (Srdf.edges g);
  let dist = Array.make n neg_inf in
  dist.(source) <- 0.0;
  (* Bellman-style relaxation; the zero-token subgraph is acyclic, so n
     passes settle it. *)
  let changed = ref true in
  let pass = ref 0 in
  while !changed && !pass <= n do
    changed := false;
    incr pass;
    for v = 0 to n - 1 do
      if dist.(v) > neg_inf then
        List.iter
          (fun (d, w) ->
            if dist.(v) +. w > dist.(d) then begin
              dist.(d) <- dist.(v) +. w;
              changed := true
            end)
          adj.(v)
    done
  done;
  dist

let max_cycle_ratio g =
  match Analysis.classify g with
  | `Acyclic -> Analysis.Acyclic
  | `Deadlocked -> Analysis.Deadlocked
  | `Cyclic ->
    (* Delay elements: token position j of edge e.  Chains carry zero
       weight; the connecting edge from the last position of e to the
       first position of f carries the longest zero-token path from
       dst(e) to src(f) plus w(f) = ρ(src(f)). *)
    let token_edges =
      List.filter (fun e -> Srdf.tokens g e > 0) (Srdf.edges g)
    in
    let first = Hashtbl.create 16 and last = Hashtbl.create 16 in
    let count = ref 0 in
    List.iter
      (fun e ->
        let t = Srdf.tokens g e in
        Hashtbl.replace first (Srdf.edge_id e) !count;
        Hashtbl.replace last (Srdf.edge_id e) (!count + t - 1);
        count := !count + t)
      token_edges;
    let h_edges = ref [] in
    (* Intra-edge chains. *)
    List.iter
      (fun e ->
        let f = Hashtbl.find first (Srdf.edge_id e)
        and l = Hashtbl.find last (Srdf.edge_id e) in
        for p = f to l - 1 do
          h_edges := (p, p + 1, 0.0) :: !h_edges
        done)
      token_edges;
    (* Connections through the zero-token subgraph. *)
    List.iter
      (fun e ->
        let source = Srdf.actor_id (Srdf.edge_dst g e) in
        let dist = zero_longest_paths g source in
        List.iter
          (fun f ->
            let target = Srdf.actor_id (Srdf.edge_src g f) in
            if dist.(target) > neg_inf then
              h_edges :=
                ( Hashtbl.find last (Srdf.edge_id e),
                  Hashtbl.find first (Srdf.edge_id f),
                  dist.(target) +. Srdf.duration g (Srdf.edge_src g f) )
                :: !h_edges)
          token_edges)
      token_edges;
    (match max_cycle_mean ~num_vertices:!count ~edges:!h_edges with
    | Some r -> Analysis.Mcr r
    | None ->
      (* `Cyclic guaranteed a cycle with tokens, so this is unreachable
         in practice; report a zero ratio defensively. *)
      Analysis.Mcr 0.0)
