type actor = int
type edge = int

type actor_info = { name : string; mutable duration : float }

type edge_info = { src : actor; dst : actor; mutable tokens : int }

type t = {
  mutable actor_infos : actor_info array;
  mutable nactors : int;
  mutable edge_infos : edge_info array;
  mutable nedges : int;
}

let initial_capacity = 8

let create () =
  {
    actor_infos = [||];
    nactors = 0;
    edge_infos = [||];
    nedges = 0;
  }

let grow_actors g =
  let cap = Array.length g.actor_infos in
  if g.nactors >= cap then begin
    let ncap = Int.max initial_capacity (2 * cap) in
    let fresh = Array.make ncap { name = ""; duration = 0.0 } in
    Array.blit g.actor_infos 0 fresh 0 g.nactors;
    g.actor_infos <- fresh
  end

let grow_edges g =
  let cap = Array.length g.edge_infos in
  if g.nedges >= cap then begin
    let ncap = Int.max initial_capacity (2 * cap) in
    let fresh = Array.make ncap { src = 0; dst = 0; tokens = 0 } in
    Array.blit g.edge_infos 0 fresh 0 g.nedges;
    g.edge_infos <- fresh
  end

let add_actor g ~name ~duration =
  if duration < 0.0 || not (Float.is_finite duration) then
    invalid_arg "Srdf.add_actor: duration must be finite and >= 0";
  grow_actors g;
  let v = g.nactors in
  g.actor_infos.(v) <- { name; duration };
  g.nactors <- v + 1;
  v

let check_actor g v =
  if v < 0 || v >= g.nactors then invalid_arg "Srdf: unknown actor"

let check_edge g e =
  if e < 0 || e >= g.nedges then invalid_arg "Srdf: unknown edge"

let add_edge g ~src ~dst ~tokens =
  check_actor g src;
  check_actor g dst;
  if tokens < 0 then invalid_arg "Srdf.add_edge: tokens must be >= 0";
  grow_edges g;
  let e = g.nedges in
  g.edge_infos.(e) <- { src; dst; tokens };
  g.nedges <- e + 1;
  e

let set_duration g v d =
  check_actor g v;
  if d < 0.0 || not (Float.is_finite d) then
    invalid_arg "Srdf.set_duration: duration must be finite and >= 0";
  g.actor_infos.(v).duration <- d

let set_tokens g e n =
  check_edge g e;
  if n < 0 then invalid_arg "Srdf.set_tokens: tokens must be >= 0";
  g.edge_infos.(e).tokens <- n

let num_actors g = g.nactors
let num_edges g = g.nedges
let actors g = List.init g.nactors Fun.id
let edges g = List.init g.nedges Fun.id

let actor_name g v =
  check_actor g v;
  g.actor_infos.(v).name

let duration g v =
  check_actor g v;
  g.actor_infos.(v).duration

let tokens g e =
  check_edge g e;
  g.edge_infos.(e).tokens

let edge_src g e =
  check_edge g e;
  g.edge_infos.(e).src

let edge_dst g e =
  check_edge g e;
  g.edge_infos.(e).dst

let out_edges g v =
  check_actor g v;
  List.filter (fun e -> g.edge_infos.(e).src = v) (edges g)

let in_edges g v =
  check_actor g v;
  List.filter (fun e -> g.edge_infos.(e).dst = v) (edges g)

let actor_id v = v
let edge_id e = e

let actor_of_id g i =
  check_actor g i;
  i

let find_actor g name =
  let rec loop v =
    if v >= g.nactors then raise Not_found
    else if g.actor_infos.(v).name = name then v
    else loop (v + 1)
  in
  loop 0

let reachable g ~reversed start =
  let seen = Array.make g.nactors false in
  let rec visit v =
    if not seen.(v) then begin
      seen.(v) <- true;
      for e = 0 to g.nedges - 1 do
        let { src; dst; _ } = g.edge_infos.(e) in
        let from, to_ = if reversed then (dst, src) else (src, dst) in
        if from = v then visit to_
      done
    end
  in
  visit start;
  seen

let is_strongly_connected g =
  g.nactors = 0
  || begin
       let fwd = reachable g ~reversed:false 0
       and bwd = reachable g ~reversed:true 0 in
       Array.for_all Fun.id fwd && Array.for_all Fun.id bwd
     end

let validate g =
  let problems = ref [] in
  for v = 0 to g.nactors - 1 do
    if g.actor_infos.(v).duration < 0.0 then
      problems :=
        Printf.sprintf "actor %s has negative duration" g.actor_infos.(v).name
        :: !problems
  done;
  for e = 0 to g.nedges - 1 do
    if g.edge_infos.(e).tokens < 0 then
      problems := Printf.sprintf "edge %d has negative tokens" e :: !problems
  done;
  List.rev !problems

let pp ppf g =
  Format.fprintf ppf "@[<v>SRDF graph: %d actors, %d queues@," g.nactors
    g.nedges;
  for v = 0 to g.nactors - 1 do
    Format.fprintf ppf "  actor %s: rho = %g@," g.actor_infos.(v).name
      g.actor_infos.(v).duration
  done;
  for e = 0 to g.nedges - 1 do
    let { src; dst; tokens } = g.edge_infos.(e) in
    Format.fprintf ppf "  queue %s -> %s: delta = %d@,"
      g.actor_infos.(src).name g.actor_infos.(dst).name tokens
  done;
  Format.fprintf ppf "@]"

let pp_dot ppf g =
  Format.fprintf ppf "digraph srdf {@.";
  Format.fprintf ppf "  rankdir=LR;@.";
  for v = 0 to g.nactors - 1 do
    Format.fprintf ppf "  n%d [label=\"%s\\nrho=%g\"];@." v
      g.actor_infos.(v).name g.actor_infos.(v).duration
  done;
  for e = 0 to g.nedges - 1 do
    let { src; dst; tokens } = g.edge_infos.(e) in
    if tokens = 0 then Format.fprintf ppf "  n%d -> n%d;@." src dst
    else
      Format.fprintf ppf "  n%d -> n%d [label=\"%d\"];@." src dst tokens
  done;
  Format.fprintf ppf "}@."
