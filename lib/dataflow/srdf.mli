(** Single-rate dataflow (SRDF) graphs.

    Also known as homogeneous synchronous dataflow graphs, computation
    graphs (Reiter 1968) or marked graphs: a directed multigraph whose
    vertices (actors) fire by consuming one token from every input
    queue and producing one token on every output queue.  Each actor
    [v] has a single firing duration [ρ(v) ≥ 0]; each queue [e] carries
    an initial number of tokens [δ(e) ≥ 0].

    This is the analysis model of Section II-B of the paper; the core
    library builds these graphs from task graphs (Section II-C) and
    asks {!Analysis} whether a periodic admissible schedule exists. *)

type t

(** Actors and edges are dense handles valid for the graph that created
    them. *)
type actor

type edge

(** [create ()] is an empty graph. *)
val create : unit -> t

(** [add_actor g ~name ~duration] adds an actor with firing duration
    [duration].
    @raise Invalid_argument if [duration < 0] or is not finite. *)
val add_actor : t -> name:string -> duration:float -> actor

(** [add_edge g ~src ~dst ~tokens] adds a queue from [src] to [dst]
    carrying [tokens] initial tokens.
    @raise Invalid_argument if [tokens < 0] or the actors belong to a
    different graph. *)
val add_edge : t -> src:actor -> dst:actor -> tokens:int -> edge

(** [set_duration g v d] updates a firing duration (used when re-timing
    a graph for new budget values). *)
val set_duration : t -> actor -> float -> unit

(** [set_tokens g e n] updates the initial tokens of a queue. *)
val set_tokens : t -> edge -> int -> unit

(** Accessors. *)
val num_actors : t -> int

val num_edges : t -> int
val actors : t -> actor list
val edges : t -> edge list
val actor_name : t -> actor -> string
val duration : t -> actor -> float
val tokens : t -> edge -> int
val edge_src : t -> edge -> actor
val edge_dst : t -> edge -> actor

(** [out_edges g v] lists the queues leaving [v]. *)
val out_edges : t -> actor -> edge list

(** [in_edges g v] lists the queues entering [v]. *)
val in_edges : t -> actor -> edge list

(** [actor_id v] and [edge_id e] expose the dense indices (stable for
    the lifetime of the graph), for use as array keys. *)
val actor_id : actor -> int

val edge_id : edge -> int

(** [actor_of_id g i] is the inverse of {!actor_id}.
    @raise Invalid_argument if out of range. *)
val actor_of_id : t -> int -> actor

(** [find_actor g name] finds an actor by name.
    @raise Not_found if absent. *)
val find_actor : t -> string -> actor

(** [is_strongly_connected g] checks strong connectivity (by a forward
    and a backward reachability pass). *)
val is_strongly_connected : t -> bool

(** [validate g] checks internal invariants (non-negative durations and
    tokens) and returns a list of human-readable problems, empty when
    the graph is well-formed. *)
val validate : t -> string list

(** [pp ppf g] prints a summary listing actors and queues. *)
val pp : Format.formatter -> t -> unit

(** [pp_dot ppf g] prints the graph in Graphviz DOT syntax: actors as
    nodes labelled with their firing durations, queues as edges
    labelled with their token counts. *)
val pp_dot : Format.formatter -> t -> unit
