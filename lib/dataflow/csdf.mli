(** Cyclo-static dataflow (CSDF) graphs.

    CSDF (Bilsen et al. 1996) generalises SDF: an actor cycles through
    a fixed sequence of {e phases}, each with its own firing duration
    and its own per-channel production/consumption rates.  Many
    streaming kernels (up/down-samplers, commutators, interleaved
    filters) are CSDF but not SDF, and the paper's closing discussion
    names such "more dynamic" models as the essential next step; like
    {!Sdf}, the graphs expand to plain SRDF so every analysis in this
    library applies unchanged. *)

type t
type actor
type channel

(** [create ()] is an empty CSDF graph. *)
val create : unit -> t

(** [add_actor t ~name ~durations] adds an actor whose phases have the
    given firing durations ([Array.length durations ≥ 1]).
    @raise Invalid_argument on an empty array or a negative entry. *)
val add_actor : t -> name:string -> durations:float array -> actor

(** [add_channel t ~src ~production ~dst ~consumption ?initial_tokens
    ()] adds a channel.  [production] gives the tokens produced by each
    phase of [src] (length = number of phases of [src]); [consumption]
    likewise for [dst].  Entries may be zero, but each vector must have
    a positive sum.
    @raise Invalid_argument on wrong lengths, negative entries,
    all-zero vectors or negative [initial_tokens]. *)
val add_channel :
  t -> src:actor -> production:int array -> dst:actor ->
  consumption:int array -> ?initial_tokens:int -> unit -> channel

(** Accessors. *)
val num_actors : t -> int

(** [actors t] lists all actors in declaration order. *)
val actors : t -> actor list

val num_channels : t -> int
val actor_name : t -> actor -> string
val phases : t -> actor -> int

(** [repetition_vector t] solves the balance equations over whole phase
    cycles: [q(src)·Σ production = q(dst)·Σ consumption] per channel;
    actor [a] fires [q(a)·phases(a)] times per iteration.
    @return [Error msg] on inconsistency. *)
val repetition_vector : t -> ((actor -> int), string) Stdlib.result

type expansion = {
  srdf : Srdf.t;
  firing : actor -> int -> Srdf.actor;
      (** [firing a k] is the SRDF actor of the [k]-th firing of [a]
          within an iteration, [1 ≤ k ≤ q(a)·phases(a)]; its phase is
          [((k−1) mod phases(a)) + 1].
          @raise Invalid_argument out of range. *)
  repetitions : actor -> int;  (** cycles per iteration, [q(a)] *)
}

(** [expand ?serialize t] is the single-rate expansion; [serialize]
    (default false) chains each actor's firings into a one-token cycle
    enforcing sequential execution. *)
val expand : ?serialize:bool -> t -> (expansion, string) Stdlib.result

(** [iteration_period ?serialize t] is the minimal period of a full
    iteration (the expansion's maximum cycle ratio). *)
val iteration_period : ?serialize:bool -> t -> (float, string) Stdlib.result
