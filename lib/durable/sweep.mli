(** Durable candidate fan-out — the engine shared by
    [Dse.throughput_curve], [Tradeoff.capacity_sweep] and
    [Pareto.frontier].

    [run] evaluates candidates [0 .. n-1], restoring any found in the
    journal, journaling each new completion, and stopping cleanly
    between candidates when the deadline expires or [cancel] reports
    true.  In-flight candidates are drained, never aborted: the result
    is always well formed, merely partial. *)

(** How a sweep ended: of [total] candidates, [resumed] were restored
    from the journal, [solved] were newly evaluated, and [not_run] were
    abandoned to the deadline or cancellation
    ([total = resumed + solved + not_run]). *)
type progress = { total : int; resumed : int; solved : int; not_run : int }

val pp_progress : Format.formatter -> progress -> unit

(** [run ?pool ?journal ?deadline ?cancel ~encode ~decode ~n f]
    evaluates [f i] for every candidate [i] not restored from
    [journal], in index order (concurrently on [pool] when given, with
    slot-deterministic results as per {!Parallel.Pool.map_result}).
    Slot [i] of the returned array is [None] when candidate [i] was
    abandoned.

    [encode v] is the journal payload of a completed candidate —
    [None] withholds the record (used for outcomes that are not final
    verdicts, such as a per-candidate timeout, so a resume retries
    them).  [decode i payload] restores candidate [i] from a journal
    record; [None] discards the record and re-solves.  Payloads must
    not contain newlines.

    [f] must not raise — the sweep drivers install their own
    per-candidate exception barrier; an exception that escapes [f]
    (or the journal's own I/O failing) is re-raised at the join.

    [obs] emits one [Restore] event per slot (hit or miss) when a
    journal is consulted, and is forwarded to the pool for its
    dispatch/join events.

    @raise Invalid_argument if [n < 0]. *)
val run :
  ?pool:Parallel.Pool.t ->
  ?journal:Journal.t ->
  ?obs:Obs.Ctx.t ->
  ?deadline:Deadline.t ->
  ?cancel:(unit -> bool) ->
  encode:('a -> string option) ->
  decode:(int -> string -> 'a option) ->
  n:int ->
  (int -> 'a) ->
  'a option array * progress
