(* A deadline is the absolute instant after which work must stop;
   [infinity] encodes "no limit" so combining and checking need no
   option plumbing.  The clock is replaceable for tests: a sweep
   deadline test should not have to sleep. *)

let clock = ref Unix.gettimeofday

let set_clock_for_testing = function
  | None -> clock := Unix.gettimeofday
  | Some f -> clock := f

let now () = !clock ()

type t = float

let none = infinity
let is_none t = t = infinity

let after seconds =
  if not (Float.is_finite seconds) || seconds <= 0.0 then
    invalid_arg "Durable.Deadline.after: seconds must be positive and finite";
  now () +. seconds

let combine a b = Float.min a b
let expired t = now () >= t
let remaining_s t = t -. now ()

let check t = if is_none t then None else Some (fun () -> expired t)
