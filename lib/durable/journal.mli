(** Append-only, crash-safe sweep journal.

    A journal records one line per {e completed} sweep candidate so a
    killed sweep can resume without re-solving finished work.  The
    format (docs/formats.md) is line-oriented text; every line carries
    a CRC-32 of its body and is written with a single [write] followed
    by [fsync], so after a crash at most the final line is torn —
    {!resume} silently truncates it and the candidate it described is
    simply re-solved.

    The header pins a {e fingerprint} of the sweep setup (configuration
    text, sweep kind, grid, fault plan — see {!fingerprint}); resuming
    with a different fingerprint is refused rather than silently mixing
    two sweeps' answers. *)

type t

(** One journal record: candidate [index] (0-based position in the
    sweep grid) completed with [payload] (an opaque, driver-defined
    encoding of its outcome). *)
type entry = { index : int; payload : string }

(** A per-record I/O fault drawn by an injected chaos hook: [`Fail]
    makes {!record} raise [Unix.Unix_error (EIO, _, _)] without
    writing; [`Corrupt] writes the line with one body byte flipped so
    its CRC no longer matches (a well-terminated but damaged line). *)
type io_fault = [ `Pass | `Fail | `Corrupt ]

(** [fingerprint parts] hashes an ordered list of setup strings into
    the 8-hex-digit fingerprint stored in the header.  Parts are
    length-prefixed before hashing, so the concatenation is
    unambiguous. *)
val fingerprint : string list -> string

(** [resume ~fingerprint path] opens [path] for journaling: a missing
    file is created with a fresh header; an existing file is loaded,
    its torn or corrupt tail truncated away, and its entries returned
    through {!entries}.  [Error msg] (a one-line human-readable reason)
    when the file is not a journal, its header is damaged, or its
    fingerprint differs from [fingerprint].

    [?salvage] switches damaged-line handling from truncate-at-first-
    damage to quarantine-and-continue: each damaged {e terminated}
    interior line is passed (raw, without its newline) to the callback,
    the valid CRC'd entries beyond it are kept, and the file is
    compacted to a clean copy via an atomic tmp+rename.  An
    unterminated tail chunk is still silently truncated in either
    mode.  A stale [<path>.tmp] left by a crash mid-compaction is
    removed on open.

    [?chaos] installs a per-record fault hook consulted by {!record}
    (one draw per call) — the deterministic injection point used by
    the serve-layer chaos campaigns. *)
val resume :
  ?salvage:(string -> unit) ->
  ?chaos:(unit -> io_fault) ->
  fingerprint:string ->
  string ->
  (t, string) Stdlib.result

(** [entries t] are the records loaded by {!resume}, in file order
    (empty for a fresh journal).  Records appended by {!record} after
    opening are not reflected. *)
val entries : t -> entry list

(** [record t ~index ~payload] durably appends one completed-candidate
    line: the call returns only after [fsync].  Thread-safe.
    @raise Invalid_argument if [index < 0], [payload] contains a
    newline, or the journal is closed. *)
val record : t -> index:int -> payload:string -> unit

(** [replace t ~entries] atomically rewrites the whole journal to hold
    exactly [entries] (fresh header and CRCs): the new content is
    written to [<path>.tmp], fsync'd, and renamed over the journal, so
    a crash at any point leaves either the old or the new file
    complete — never a hybrid.  This is the compaction primitive: the
    caller passes the live entries and the dead ones vanish.
    Thread-safe; subsequent {!record} calls append to the new file.
    @raise Invalid_argument if the journal is closed. *)
val replace : t -> entries:entry list -> unit

(** [path t] is the file the journal writes to. *)
val path : t -> string

(** [close t] closes the file descriptor.  Idempotent. *)
val close : t -> unit
