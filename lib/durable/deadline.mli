(** Wall-clock budgets for long-running sweeps.

    A deadline is an absolute instant; work holding one polls
    {!expired} at natural checkpoints (between sweep candidates,
    between interior-point iterations) and winds down cooperatively —
    no signals, no asynchronous exceptions.  The special value {!none}
    never expires, so callers thread a [t] unconditionally instead of
    branching on an option. *)

type t

(** The deadline that never expires. *)
val none : t

(** [is_none t] holds for {!none} only. *)
val is_none : t -> bool

(** [after seconds] expires [seconds] from now.
    @raise Invalid_argument when [seconds] is non-positive, infinite or
    NaN. *)
val after : float -> t

(** [combine a b] is the earlier of the two deadlines ({!none} is the
    identity). *)
val combine : t -> t -> t

(** [expired t] polls the clock. *)
val expired : t -> bool

(** [remaining_s t] is the time left (negative once expired, [+inf] for
    {!none}). *)
val remaining_s : t -> float

(** [check t] is the polling closure handed to
    {!Conic.Socp.params.deadline}: [None] for {!none} — so an unlimited
    solve keeps a hook-free iteration loop — otherwise
    [Some (fun () -> expired t)]. *)
val check : t -> (unit -> bool) option

(** [now ()] reads the deadline clock (for symmetric timestamping in
    callers). *)
val now : unit -> float

(** [set_clock_for_testing (Some f)] replaces the wall clock with [f];
    [None] restores [Unix.gettimeofday].  Tests only — deadlines
    created under one clock are compared under the current one. *)
val set_clock_for_testing : (unit -> float) option -> unit
