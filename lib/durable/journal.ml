(* Append-only sweep journal.  One line per completed candidate:

     <crc32-hex> done <index> <payload>

   preceded by a header line

     <crc32-hex> budgetbuf-journal 1 <fingerprint>

   Each line's CRC covers everything after the single separating
   space.  Lines are written with one [write] and one [fsync], so a
   crash leaves at most one torn line — at the tail — which loading
   detects (bad CRC or missing newline) and truncates away.  The
   fingerprint pins the journal to one exact sweep: a resume against a
   different config or grid must re-solve, not silently reuse stale
   answers. *)

type entry = { index : int; payload : string }

type t = {
  path : string;
  fd : Unix.file_descr;
  mutex : Mutex.t;
  mutable closed : bool;
  entries : entry list;
}

let version = "1"
let magic = "budgetbuf-journal"

let fingerprint parts =
  (* Length-prefix every part so ["ab"; "c"] and ["a"; "bc"] differ. *)
  Crc.hex
    (List.fold_left
       (fun acc p ->
         Crc.update (Crc.update acc (string_of_int (String.length p) ^ ":")) p)
       0l parts)

let render_line body = Crc.hex (Crc.string body) ^ " " ^ body ^ "\n"

(* [line] has no trailing newline.  [None] on any damage: too short,
   missing separator, CRC mismatch. *)
let body_of_line line =
  if String.length line < 10 || line.[8] <> ' ' then None
  else
    let crc = String.sub line 0 8 in
    let body = String.sub line 9 (String.length line - 9) in
    if String.equal crc (Crc.hex (Crc.string body)) then Some body else None

let entry_of_body body =
  match String.split_on_char ' ' body with
  | "done" :: idx :: rest -> begin
    match int_of_string_opt idx with
    | Some index when index >= 0 ->
      Some { index; payload = String.concat " " rest }
    | Some _ | None -> None
  end
  | _ -> None

(* Newline-terminated lines with their start offsets; an unterminated
   tail chunk is torn by definition and not returned. *)
let scan_lines content =
  let len = String.length content in
  let rec scan pos acc =
    if pos >= len then List.rev acc
    else
      match String.index_from_opt content pos '\n' with
      | None -> List.rev acc
      | Some nl -> scan (nl + 1) ((pos, String.sub content pos (nl - pos)) :: acc)
  in
  scan 0 []

(* Returns the good entries, the byte length of the valid prefix, and
   the fingerprint found in the header. *)
let load content =
  match scan_lines content with
  | [] -> Error "empty or truncated journal header"
  | (_, first) :: rest -> begin
    match Option.bind (body_of_line first) (fun body ->
        match String.split_on_char ' ' body with
        | [ m; v; fp ] when String.equal m magic && String.equal v version ->
          Some fp
        | _ -> None)
    with
    | None -> Error "not a budgetbuf journal (bad or corrupt header)"
    | Some fp ->
      let good_len = ref (String.length first + 1) in
      let rec take acc = function
        | [] -> List.rev acc
        | (pos, line) :: rest -> begin
          match Option.bind (body_of_line line) entry_of_body with
          | Some e ->
            good_len := pos + String.length line + 1;
            take (e :: acc) rest
          | None ->
            (* First damaged line: everything from here on is dropped —
               after a torn write nothing downstream is trustworthy. *)
            List.rev acc
        end
      in
      (* Bind before building the tuple: tuple components evaluate
         right-to-left, and [take] must run before [!good_len]. *)
      let entries = take [] rest in
      Ok (entries, !good_len, fp)
  end

let write_fully fd s =
  let len = String.length s in
  let rec go pos =
    if pos < len then go (pos + Unix.write_substring fd s pos (len - pos))
  in
  go 0

let resume ~fingerprint path =
  if Sys.file_exists path then begin
    let content = In_channel.with_open_bin path In_channel.input_all in
    match load content with
    | Error msg -> Error (Printf.sprintf "resume journal %s: %s" path msg)
    | Ok (entries, good_len, found) ->
      if not (String.equal found fingerprint) then
        Error
          (Printf.sprintf
             "resume journal %s: fingerprint mismatch — the journal was \
              written by a different configuration or sweep; delete it to \
              start over"
             path)
      else begin
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
        if good_len < String.length content then Unix.ftruncate fd good_len;
        ignore (Unix.lseek fd good_len Unix.SEEK_SET);
        Ok { path; fd; mutex = Mutex.create (); closed = false; entries }
      end
  end
  else begin
    match
      Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644
    with
    | exception Unix.Unix_error (err, _, _) ->
      Error
        (Printf.sprintf "resume journal %s: %s" path (Unix.error_message err))
    | fd ->
      let header =
        render_line (String.concat " " [ magic; version; fingerprint ])
      in
      write_fully fd header;
      Unix.fsync fd;
      Ok { path; fd; mutex = Mutex.create (); closed = false; entries = [] }
  end

let entries t = t.entries
let path t = t.path

let record t ~index ~payload =
  if index < 0 then invalid_arg "Durable.Journal.record: index must be >= 0";
  if String.contains payload '\n' then
    invalid_arg "Durable.Journal.record: payload must not contain newlines";
  let line = render_line (Printf.sprintf "done %d %s" index payload) in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      if t.closed then invalid_arg "Durable.Journal.record: journal closed";
      write_fully t.fd line;
      Unix.fsync t.fd)

let close t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Unix.close t.fd
      end)
