(* Append-only sweep journal.  One line per completed candidate:

     <crc32-hex> done <index> <payload>

   preceded by a header line

     <crc32-hex> budgetbuf-journal 1 <fingerprint>

   Each line's CRC covers everything after the single separating
   space.  Lines are written with one [write] and one [fsync], so a
   crash leaves at most one torn line — at the tail — which loading
   detects (bad CRC or missing newline) and truncates away.  The
   fingerprint pins the journal to one exact sweep: a resume against a
   different config or grid must re-solve, not silently reuse stale
   answers.

   Two opt-in extensions serve the chaos-hardened memo cache:

   - salvage mode ([resume ~salvage]): a damaged line in the middle of
     the file no longer drops everything after it.  The damaged line is
     handed to the callback (for a .quarantine sidecar) and the valid
     entries beyond it are kept; the file is compacted to a clean copy
     via an atomic tmp+rename.  An unterminated tail chunk is still
     silently truncated — it is the expected residue of a crash, not
     data loss.

   - [replace]: rewrites the whole journal with a given entry list
     (fresh header, fresh CRCs) through the same tmp+fsync+rename
     dance, so a crash at any point leaves either the old complete
     file or the new complete file, never a hybrid. *)

type entry = { index : int; payload : string }
type io_fault = [ `Pass | `Fail | `Corrupt ]

type t = {
  path : string;
  mutable fd : Unix.file_descr;
  mutex : Mutex.t;
  mutable closed : bool;
  entries : entry list;
  fp : string;
  chaos : (unit -> io_fault) option;
}

let version = "1"
let magic = "budgetbuf-journal"

let fingerprint parts =
  (* Length-prefix every part so ["ab"; "c"] and ["a"; "bc"] differ. *)
  Crc.hex
    (List.fold_left
       (fun acc p ->
         Crc.update (Crc.update acc (string_of_int (String.length p) ^ ":")) p)
       0l parts)

let render_line body = Crc.hex (Crc.string body) ^ " " ^ body ^ "\n"

(* [line] has no trailing newline.  [None] on any damage: too short,
   missing separator, CRC mismatch. *)
let body_of_line line =
  if String.length line < 10 || line.[8] <> ' ' then None
  else
    let crc = String.sub line 0 8 in
    let body = String.sub line 9 (String.length line - 9) in
    if String.equal crc (Crc.hex (Crc.string body)) then Some body else None

let entry_of_body body =
  match String.split_on_char ' ' body with
  | "done" :: idx :: rest -> begin
    match int_of_string_opt idx with
    | Some index when index >= 0 ->
      Some { index; payload = String.concat " " rest }
    | Some _ | None -> None
  end
  | _ -> None

(* Newline-terminated lines with their start offsets; an unterminated
   tail chunk is torn by definition and not returned. *)
let scan_lines content =
  let len = String.length content in
  let rec scan pos acc =
    if pos >= len then List.rev acc
    else
      match String.index_from_opt content pos '\n' with
      | None -> List.rev acc
      | Some nl -> scan (nl + 1) ((pos, String.sub content pos (nl - pos)) :: acc)
  in
  scan 0 []

(* Returns the good entries, the byte length of the valid prefix, the
   fingerprint found in the header, and (in salvage mode) the damaged
   interior lines.  Without [salvage], loading stops at the first
   damaged line — everything after a torn write is untrustworthy.
   With it, damaged lines are collected and the valid entries around
   them are all kept. *)
let load ?(salvage = false) content =
  match scan_lines content with
  | [] -> Error "empty or truncated journal header"
  | (_, first) :: rest -> begin
    match Option.bind (body_of_line first) (fun body ->
        match String.split_on_char ' ' body with
        | [ m; v; fp ] when String.equal m magic && String.equal v version ->
          Some fp
        | _ -> None)
    with
    | None -> Error "not a budgetbuf journal (bad or corrupt header)"
    | Some fp ->
      let good_len = ref (String.length first + 1) in
      let damaged = ref [] in
      let rec take acc = function
        | [] -> List.rev acc
        | (pos, line) :: rest -> begin
          match Option.bind (body_of_line line) entry_of_body with
          | Some e ->
            good_len := pos + String.length line + 1;
            take (e :: acc) rest
          | None ->
            if salvage then begin
              (* Quarantine the damaged line and keep reading: the
                 lines beyond it were each individually fsync'd and
                 carry their own CRCs, so they are still trustworthy. *)
              damaged := line :: !damaged;
              take acc rest
            end
            else
              (* First damaged line: everything from here on is dropped —
                 after a torn write nothing downstream is trustworthy. *)
              List.rev acc
        end
      in
      (* Bind before building the tuple: tuple components evaluate
         right-to-left, and [take] must run before [!good_len]. *)
      let entries = take [] rest in
      Ok (entries, !good_len, fp, List.rev !damaged)
  end

let write_fully fd s =
  let len = String.length s in
  let rec go pos =
    if pos < len then go (pos + Unix.write_substring fd s pos (len - pos))
  in
  go 0

let fsync_dir path =
  (* Persist a rename: fsync the containing directory.  Best effort —
     some filesystems refuse directory fsync. *)
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dfd ->
    (try Unix.fsync dfd with Unix.Unix_error _ -> ());
    Unix.close dfd

let tmp_path path = path ^ ".tmp"

let render_all ~fingerprint entries =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (render_line (String.concat " " [ magic; version; fingerprint ]));
  List.iter
    (fun { index; payload } ->
      Buffer.add_string b
        (render_line (Printf.sprintf "done %d %s" index payload)))
    entries;
  Buffer.contents b

(* Write a complete replacement journal next to [path] and atomically
   swap it in.  A crash before the rename leaves the old file intact
   (plus a stale .tmp that the next open removes); a crash after the
   rename leaves the new file complete. *)
let atomic_rewrite ~fingerprint path entries =
  let tmp = tmp_path path in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  write_fully fd (render_all ~fingerprint entries);
  Unix.fsync fd;
  Unix.close fd;
  Unix.rename tmp path;
  fsync_dir path

let resume ?salvage ?chaos ~fingerprint path =
  (* A stale .tmp is the residue of a crash mid-compaction: the rename
     never happened, so the real journal is intact and the partial
     copy is garbage. *)
  (try Sys.remove (tmp_path path) with Sys_error _ -> ());
  if Sys.file_exists path then begin
    let content = In_channel.with_open_bin path In_channel.input_all in
    match load ~salvage:(Option.is_some salvage) content with
    | Error msg -> Error (Printf.sprintf "resume journal %s: %s" path msg)
    | Ok (entries, good_len, found, damaged) ->
      if not (String.equal found fingerprint) then
        Error
          (Printf.sprintf
             "resume journal %s: fingerprint mismatch — the journal was \
              written by a different configuration or sweep; delete it to \
              start over"
             path)
      else begin
        (match salvage with
        | Some quarantine -> List.iter quarantine damaged
        | None -> ());
        if damaged <> [] then
          (* Compact away the damage so the on-disk file is clean
             again; the quarantine callback above kept the raw bytes. *)
          atomic_rewrite ~fingerprint path entries
        else begin
          let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
          if good_len < String.length content then Unix.ftruncate fd good_len;
          Unix.close fd
        end;
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
        ignore (Unix.lseek fd 0 Unix.SEEK_END);
        Ok
          {
            path;
            fd;
            mutex = Mutex.create ();
            closed = false;
            entries;
            fp = fingerprint;
            chaos;
          }
      end
  end
  else begin
    match
      Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644
    with
    | exception Unix.Unix_error (err, _, _) ->
      Error
        (Printf.sprintf "resume journal %s: %s" path (Unix.error_message err))
    | fd ->
      let header =
        render_line (String.concat " " [ magic; version; fingerprint ])
      in
      write_fully fd header;
      Unix.fsync fd;
      Ok
        {
          path;
          fd;
          mutex = Mutex.create ();
          closed = false;
          entries = [];
          fp = fingerprint;
          chaos;
        }
  end

let entries t = t.entries
let path t = t.path

(* Flip one byte in the middle of the line body so the CRC no longer
   matches: what lands on disk is a well-terminated but damaged line,
   exactly the mid-file corruption salvage mode quarantines. *)
let corrupt_line line =
  let b = Bytes.of_string line in
  let pos = 9 + ((Bytes.length b - 10) / 2) in
  Bytes.set b pos (if Bytes.get b pos = 'x' then 'y' else 'x');
  Bytes.to_string b

let record t ~index ~payload =
  if index < 0 then invalid_arg "Durable.Journal.record: index must be >= 0";
  if String.contains payload '\n' then
    invalid_arg "Durable.Journal.record: payload must not contain newlines";
  let line = render_line (Printf.sprintf "done %d %s" index payload) in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      if t.closed then invalid_arg "Durable.Journal.record: journal closed";
      let line =
        match t.chaos with
        | None -> line
        | Some draw -> begin
          match draw () with
          | `Pass -> line
          | `Fail -> raise (Unix.Unix_error (Unix.EIO, "write", t.path))
          | `Corrupt -> corrupt_line line
        end
      in
      write_fully t.fd line;
      Unix.fsync t.fd)

let replace t ~entries =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      if t.closed then invalid_arg "Durable.Journal.replace: journal closed";
      atomic_rewrite ~fingerprint:t.fp t.path entries;
      Unix.close t.fd;
      let fd = Unix.openfile t.path [ Unix.O_WRONLY ] 0o644 in
      ignore (Unix.lseek fd 0 Unix.SEEK_END);
      t.fd <- fd)

let close t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Unix.close t.fd
      end)
