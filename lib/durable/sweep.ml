(* The shared durable fan-out: restore journal hits, run the missing
   candidates (on a pool when given), journal each completion, and stop
   cleanly — never mid-candidate — when the deadline expires or the
   caller cancels.  Slots that were neither restored nor run come back
   [None]; the caller decides how to present a partial sweep. *)

type progress = { total : int; resumed : int; solved : int; not_run : int }

let pp_progress ppf p =
  Format.fprintf ppf "%d/%d resumed, %d solved, %d not run" p.resumed p.total
    p.solved p.not_run

let run ?pool ?journal ?obs ?(deadline = Deadline.none) ?cancel ~encode ~decode
    ~n f =
  if n < 0 then invalid_arg "Durable.Sweep.run: n must be >= 0";
  let results = Array.make (Int.max n 1) None in
  let resumed = ref 0 in
  (match journal with
  | None -> ()
  | Some j ->
    List.iter
      (fun { Journal.index; payload } ->
        if index >= 0 && index < n then
          match results.(index) with
          | Some _ -> () (* duplicate record: first one wins *)
          | None -> (
            match decode index payload with
            | Some v ->
              results.(index) <- Some v;
              incr resumed
            | None -> ()))
      (Journal.entries j);
    (* One restore verdict per slot, hit or miss — only meaningful (and
       only emitted) when a journal was consulted at all. *)
    match obs with
    | None -> ()
    | Some o ->
      for i = 0 to n - 1 do
        Obs.Ctx.emit o
          (Obs.Trace.Restore { index = i; hit = results.(i) <> None })
      done);
  let stop =
    let cancelled =
      match cancel with None -> fun () -> false | Some c -> c
    in
    fun () -> cancelled () || Deadline.expired deadline
  in
  let counter = Mutex.create () in
  let solved = ref 0 in
  let solve_one i =
    let v = f i in
    (* Journal before counting: if the fsync raises, the candidate is
       not reported as saved. *)
    (match journal with
    | None -> ()
    | Some j -> (
      match encode v with
      | None -> () (* not a final verdict (e.g. timed out): re-solve on resume *)
      | Some payload -> Journal.record j ~index:i ~payload));
    Mutex.lock counter;
    incr solved;
    Mutex.unlock counter;
    v
  in
  let todo =
    List.filter
      (fun i -> match results.(i) with None -> true | Some _ -> false)
      (List.init n Fun.id)
  in
  (match pool with
  | None ->
    List.iter
      (fun i -> if not (stop ()) then results.(i) <- Some (solve_one i))
      todo
  | Some pool ->
    List.iter2
      (fun i r ->
        match r with
        | Ok v -> results.(i) <- Some v
        | Error Parallel.Pool.Cancelled -> ()
        | Error e -> raise e)
      todo
      (Parallel.Pool.map_result ~cancel:stop ?obs pool solve_one todo));
  let results = if n = 0 then [||] else results in
  ( results,
    { total = n; resumed = !resumed; solved = !solved; not_run = n - !resumed - !solved }
  )
