(* The CRC-32 implementation moved to the bottom of the dependency
   graph ([Obs.Crc]) so the trace sinks can share it; this re-export
   keeps the historical [Durable.Crc] API for the journal and its
   callers. *)

include Obs.Crc
