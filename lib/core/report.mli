(** Human-readable report of a solved mapping.

    Collects in one place everything a designer asks of a mapping:
    the budgets and capacities themselves, per-processor TDM
    utilisation, per-memory occupancy, end-to-end latency per chain
    graph, throughput slack and the critical cycle.  Rendered as plain
    text by the CLI's [report] subcommand. *)

type processor_load = {
  proc : Taskgraph.Config.proc;
  allocated : float;  (** Σ budgets + overhead, Mcycles per interval *)
  utilisation : float;  (** allocated / replenishment *)
}

type memory_load = {
  memory : Taskgraph.Config.memory;
  occupied : int;  (** Σ γ·ζ over the buffers placed there *)
  fraction : float;  (** occupied / capacity; 0 for a 0-capacity memory *)
}

type graph_report = {
  graph : Taskgraph.Config.graph;
  period_required : float;
  period_min : float option;  (** the mapped graph's MCR *)
  slack : float option;
  latency : float option;  (** for graphs with a unique source/sink *)
  critical : Sensitivity.critical option;
}

type t = {
  processors : processor_load list;
  memories : memory_load list;
  graphs : graph_report list;
  violations : string list;  (** from {!Dataflow_model.verify} *)
}

(** [build cfg mapped] assembles the report. *)
val build : Taskgraph.Config.t -> Taskgraph.Config.mapped -> t

(** [pp cfg ppf t] renders the report. *)
val pp : Taskgraph.Config.t -> Format.formatter -> t -> unit
