module Config = Taskgraph.Config
module Socp = Conic.Socp
module Model = Conic.Model
module Recovery = Robust.Recovery
module Fault = Robust.Fault

type stats = {
  variables : int;
  rows : int;
  iterations : int;
  attempts : int;
  solve_time_s : float;
  kkt_fallbacks : int;
}

type result = {
  mapped : Config.mapped;
  continuous : Socp_builder.continuous;
  objective : float;
  rounded_objective : float;
  verification : Violation.t list;
  certificate : Certify.t;
  sim_check : string list;
  recovery : Recovery.trace;
  stats : stats;
}

type error =
  | Infeasible of string
  | Solver_failure of string
  | Timed_out of string

let pp_error ppf = function
  | Infeasible msg -> Format.fprintf ppf "infeasible: %s" msg
  | Solver_failure msg -> Format.fprintf ppf "solver failure: %s" msg
  | Timed_out msg -> Format.fprintf ppf "timed out: %s" msg

(* Short, stable label for sweep skip summaries ("skipped: 1 (stalled)").
   The Solver_failure messages below all start with the status word. *)
let short_reason = function
  | Infeasible _ -> "infeasible"
  | Timed_out _ -> "timed out"
  | Solver_failure msg ->
    if String.length msg >= 15 && String.sub msg 0 15 = "iteration limit" then
      "iteration limit"
    else if String.length msg >= 7 && String.sub msg 0 7 = "stalled" then
      "stalled"
    else if String.length msg >= 9 && String.sub msg 0 9 = "unbounded" then
      "unbounded"
    else if String.length msg >= 8 && String.sub msg 0 8 = "uncaught" then
      "exception"
    else "failure"

let round_budget = Rounding.round_budget
let round_capacity = Rounding.round_capacity

(* TDM-simulation cross-check of a rounded mapping: the dataflow model
   is conservative, so a mapping whose PAS admits period µ must
   simulate close to µ or better.  A deadlock (or a gross period miss)
   means the mapping is unusable regardless of what the solver
   claimed; a small transient overshoot is reported but tolerated —
   200 iterations measure the steady state through a startup phase. *)
let sim_soft_margin = 1.10
let sim_hard_margin = 1.5

let sim_cross_check cfg mapped =
  if Config.all_tasks cfg = [] then []
  else
    match Tdm_sim.Sim.run cfg mapped ~iterations:200 () with
    | Error e -> [ Printf.sprintf "simulation failed: %s" e ]
    | Ok report ->
      List.concat_map
        (fun g ->
          let mu = Config.period cfg g in
          let p = report.Tdm_sim.Sim.graph_period g in
          if p > (sim_soft_margin *. mu) +. 1e-9 then
            [
              Printf.sprintf
                "simulation: graph %s measured period %.4f exceeds required \
                 %.4f"
                (Config.graph_name cfg g) p mu;
            ]
          else [])
        (Config.graphs cfg)

(* A sim verdict that proves the mapping unusable (as opposed to a
   transient measurement overshoot): deadlock, invalid budgets, or a
   period beyond any startup effect. *)
let sim_hard_failure cfg mapped =
  if Config.all_tasks cfg = [] then None
  else
    match Tdm_sim.Sim.run cfg mapped ~iterations:200 () with
    | Error e -> Some (Printf.sprintf "simulation failed: %s" e)
    | Ok report ->
      List.find_map
        (fun g ->
          let mu = Config.period cfg g in
          let p = report.Tdm_sim.Sim.graph_period g in
          if p > sim_hard_margin *. mu then
            Some
              (Printf.sprintf
                 "simulation: graph %s measured period %.4f far exceeds \
                  required %.4f"
                 (Config.graph_name cfg g) p mu)
          else None)
        (Config.graphs cfg)

let rounded_objective_of cfg (mapped : Config.mapped) =
  List.fold_left
    (fun acc w -> acc +. (Config.task_weight cfg w *. mapped.Config.budget w))
    0.0 (Config.all_tasks cfg)
  +. List.fold_left
       (fun acc b ->
         acc
         +. Config.buffer_weight cfg b
            *. float_of_int
                 (Config.container_size cfg b
                 * (mapped.Config.capacity b - Config.initial_tokens cfg b)))
       0.0 (Config.all_buffers cfg)

(* The [bad_round] fault: corrupt the rounded solution — one budget
   down a granule (or, lacking tasks, one capacity down a container) —
   so tests can pin the exact-certification refutation path against a
   mapping that is wrong by construction. *)
let corrupt_rounding cfg (mapped : Config.mapped) =
  match Config.all_tasks cfg with
  | w :: _ ->
    let victim = Config.task_id w in
    let bad = mapped.Config.budget w -. Config.granularity cfg in
    {
      mapped with
      Config.budget =
        (fun w' ->
          if Config.task_id w' = victim then bad else mapped.Config.budget w');
    }
  | [] -> begin
    match Config.all_buffers cfg with
    | b :: _ ->
      let victim = Config.buffer_id b in
      let bad = mapped.Config.capacity b - 1 in
      {
        mapped with
        Config.capacity =
          (fun b' ->
            if Config.buffer_id b' = victim then bad
            else mapped.Config.capacity b');
      }
    | [] -> mapped
  end

(* Round and certify an Optimal continuous point.  Certification is in
   three tiers: the float Bellman–Ford re-verification (reported in
   [verification] as before) and the exact rational certificate
   ([certificate]) always run; on a *recovered* solve the mapping must
   additionally pass both — and the simulation hard check — or the
   degraded solve is turned into an error rather than silently
   returned. *)
let finish_optimal cfg ~policy ~obs builder result trace stats =
  let continuous = Socp_builder.extract cfg builder result in
  let granularity = Config.granularity cfg in
  let mapped_with eps =
    let budgets =
      List.map
        (fun w ->
          ( Config.task_id w,
            Rounding.round_budget_eps ~eps ~granularity
              (continuous.Socp_builder.budget w) ))
        (Config.all_tasks cfg)
    in
    let capacities =
      List.map
        (fun b ->
          ( Config.buffer_id b,
            Rounding.round_capacity_eps ~eps
              ~initial_tokens:(Config.initial_tokens cfg b)
              (continuous.Socp_builder.space b) ))
        (Config.all_buffers cfg)
    in
    {
      Config.budget = (fun w -> List.assoc (Config.task_id w) budgets);
      Config.capacity = (fun b -> List.assoc (Config.buffer_id b) capacities);
    }
  in
  match
    (* Snap near-grid values first; if either re-check rejects that
       (possible only when the optimum genuinely sits past a grid
       point — the exact certifier decides the boundary the float
       check cannot), fall back to the strictly conservative
       rounding. *)
    let mapped, verification, certificate =
      let snapped = mapped_with Rounding.round_eps in
      let v = Dataflow_model.verify cfg snapped in
      let c = Certify.check cfg snapped in
      if v = [] && Certify.certified c then (snapped, v, c)
      else
        let strict = mapped_with 0.0 in
        (strict, Dataflow_model.verify cfg strict, Certify.check cfg strict)
    in
    if Fault.corrupts_rounding policy.Recovery.fault then begin
      (match obs with
      | None -> ()
      | Some o ->
        Obs.Ctx.emit o
          (Obs.Trace.Fault_injected { kind = "bad_round"; attempt = 1 }));
      let bad = corrupt_rounding cfg mapped in
      (bad, Dataflow_model.verify cfg bad, Certify.check cfg bad)
    end
    else (mapped, verification, certificate)
  with
  | exception Rounding.Non_finite { what; value } ->
    Error
      (Solver_failure
         (Printf.sprintf
            "non-finite %s %h emitted by the solver; rounding refused" what
            value))
  | mapped, verification, certificate ->
    (match obs with
    | None -> ()
    | Some o ->
      Obs.Ctx.emit o
        (Obs.Trace.Certificate
           {
             verdict =
               (if Certify.certified certificate then "certified"
                else "refuted");
           }));
    let sim_check = sim_cross_check cfg mapped in
    let uncertifiable msg =
      Error
        (Solver_failure
           (Format.asprintf
              "stalled recovery produced an uncertifiable mapping (%s) after \
               %d attempt(s) (%a)"
              msg (Recovery.attempts trace) Recovery.pp_trace trace))
    in
    if Recovery.recovered trace && verification <> [] then
      uncertifiable
        (String.concat "; " (List.map Violation.to_string verification))
    else if Recovery.recovered trace && not (Certify.certified certificate)
    then uncertifiable (Certify.summary certificate)
    else
      (match
         if Recovery.recovered trace then sim_hard_failure cfg mapped
         else None
       with
      | Some msg -> uncertifiable msg
      | None ->
        Ok
          {
            mapped;
            continuous;
            objective = continuous.Socp_builder.objective;
            rounded_objective = rounded_objective_of cfg mapped;
            verification;
            certificate;
            sim_check;
            recovery = trace;
            stats;
          })

(* Last rung of the ladder: when every cone-solver attempt stalled,
   restate the problem on the exact-simplex path — Fair_share budgets
   plus the phase-2 buffer LP of the two-phase baseline.  The result is
   not the joint optimum, but it is feasible and certified, which beats
   returning nothing.  The synthesized [continuous] point reports the
   fallback's own (rounded) values. *)
let fallback_lp cfg ~obs trace stats final_status =
  let fail ?note () =
    let suffix = match note with None -> "" | Some n -> "; " ^ n in
    Error
      (Solver_failure
         (Format.asprintf "%a after %d attempt(s) (%a)%s" Socp.pp_status
            final_status (Recovery.attempts trace) Recovery.pp_trace trace
            suffix))
  in
  (match obs with
  | None -> ()
  | Some o ->
    Obs.Ctx.emit o
      (Obs.Trace.Rung_enter
         { attempt = Recovery.attempts trace + 1; stage = "fallback-lp" }));
  let exit_rung status =
    match obs with
    | None -> ()
    | Some o ->
      Obs.Ctx.emit o
        (Obs.Trace.Rung_exit
           {
             attempt = Recovery.attempts trace + 1;
             stage = "fallback-lp";
             status;
             fault = None;
           })
  in
  match Two_phase.budget_first ~policy:Two_phase.Fair_share ?obs cfg with
  | Error e ->
    exit_rung "failed";
    fail
      ~note:
        (Format.asprintf "fallback LP also failed: %a" Two_phase.pp_error e)
      ()
  | Ok tp ->
    let mapped = tp.Two_phase.mapped in
    let verification = Dataflow_model.verify cfg mapped in
    let certificate = tp.Two_phase.certificate in
    let hard =
      if verification <> [] then
        Some (String.concat "; " (List.map Violation.to_string verification))
      else if not (Certify.certified certificate) then
        Some (Certify.summary certificate)
      else sim_hard_failure cfg mapped
    in
    (match hard with
    | Some msg ->
      exit_rung "uncertified";
      fail ~note:("fallback LP mapping failed certification: " ^ msg) ()
    | None ->
      exit_rung "recovered (exact simplex)";
      let attempt =
        {
          Recovery.stage = Recovery.Fallback_lp;
          status = "recovered (exact simplex)";
          iterations = 0;
          time_s = 0.0;
        }
      in
      let trace = trace @ [ attempt ] in
      let continuous =
        {
          Socp_builder.budget = (fun w -> mapped.Config.budget w);
          (* λ is the reciprocal surrogate of Constraint (8), λ·β′ ≥ 1. *)
          lambda = (fun w -> 1.0 /. mapped.Config.budget w);
          space =
            (fun b ->
              float_of_int
                (mapped.Config.capacity b - Config.initial_tokens cfg b));
          capacity = (fun b -> float_of_int (mapped.Config.capacity b));
          objective = tp.Two_phase.objective;
        }
      in
      Ok
        {
          mapped;
          continuous;
          objective = tp.Two_phase.objective;
          rounded_objective = tp.Two_phase.objective;
          verification;
          certificate;
          sim_check = sim_cross_check cfg mapped;
          recovery = trace;
          stats = { stats with attempts = stats.attempts + 1 };
        })

(* The sparse backend wins decisively on large instances (BENCH_sparse:
   ~5x at a 30-task chain, ~23x at 300) while small instances are both
   fast either way and pinned bit-identical to the historical dense
   path by the cram goldens.  The threshold counts solver entities
   (tasks + buffers), which tracks the KKT system dimension. *)
let sparse_auto_threshold = 48

let kkt_auto cfg =
  let n =
    List.length (Taskgraph.Config.all_tasks cfg)
    + List.length (Taskgraph.Config.all_buffers cfg)
  in
  if n >= sparse_auto_threshold then `Sparse else `Dense

let solve ?params ?policy ?obs cfg =
  let policy =
    match policy with Some p -> p | None -> Recovery.default_policy ()
  in
  (* An explicit [?obs] wins; otherwise keep whatever already rides in
     the params (threaded there by an enclosing sweep). *)
  let obs = Durability.obs_of params obs in
  let params = Durability.params_with_obs params obs in
  let builder = Socp_builder.build cfg in
  let t0 = Unix.gettimeofday () in
  let result, trace =
    Obs.Ctx.with_span obs "socp" (fun () ->
        Recovery.solve_model ~policy ?params builder.Socp_builder.model)
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let stats =
    {
      variables = Model.num_variables builder.Socp_builder.model;
      rows = Model.num_rows builder.Socp_builder.model;
      iterations = result.Model.raw.Socp.iterations;
      attempts = Recovery.attempts trace;
      solve_time_s = elapsed;
      kkt_fallbacks = result.Model.raw.Socp.kkt_fallbacks;
    }
  in
  match result.Model.status with
  | Socp.Primal_infeasible ->
    Error
      (Infeasible
         "no budget and buffer assignment satisfies the throughput \
          requirement under the given processor, memory and capacity bounds")
  | Socp.Dual_infeasible ->
    (* Objective (5) has non-negative weights over non-negative
       variables, so unboundedness indicates a modelling error. *)
    Error (Solver_failure "unbounded cone program (dual infeasible)")
  | Socp.Timed_out ->
    (* The deadline that stopped the cone solve is already blown; the
       exact-simplex fallback would only blow it further.  No retry, no
       fallback — the sweep layer decides whether a resume re-solves. *)
    Error
      (Timed_out
         (Format.asprintf "deadline expired after %d attempt(s) (%a)"
            (Recovery.attempts trace) Recovery.pp_trace trace))
  | Socp.Iteration_limit | Socp.Stalled ->
    (* The whole cone ladder failed; try the exact-simplex restatement
       unless the fault plan covers that attempt too. *)
    let fallback_attempt = Recovery.attempts trace + 1 in
    if Fault.covers policy.Recovery.fault ~attempt:fallback_attempt then
      Error
        (Solver_failure
           (Format.asprintf
              "%a after %d attempt(s) (%a); fallback LP disabled by fault \
               plan"
              Socp.pp_status result.Model.status (Recovery.attempts trace)
              Recovery.pp_trace trace))
    else fallback_lp cfg ~obs trace stats result.Model.status
  | Socp.Optimal ->
    Obs.Ctx.with_span obs "finish" (fun () ->
        finish_optimal cfg ~policy ~obs builder result trace stats)
