module Config = Taskgraph.Config
module Socp = Conic.Socp
module Model = Conic.Model

type stats = {
  variables : int;
  rows : int;
  iterations : int;
  solve_time_s : float;
}

type result = {
  mapped : Config.mapped;
  continuous : Socp_builder.continuous;
  objective : float;
  rounded_objective : float;
  verification : string list;
  stats : stats;
}

type error = Infeasible of string | Solver_failure of string

let pp_error ppf = function
  | Infeasible msg -> Format.fprintf ppf "infeasible: %s" msg
  | Solver_failure msg -> Format.fprintf ppf "solver failure: %s" msg

(* The tolerance matches the solver accuracy: a continuous value within
   1e-6 of a grid point is snapped down rather than rounded a whole
   granule up.  [solve] re-verifies the rounded mapping and falls back
   to strict (eps = 0) rounding should the snap ever be unsound. *)
let round_eps = 1e-6

let round_budget_eps ~eps ~granularity beta' =
  let q = ceil ((beta' /. granularity) -. eps) in
  granularity *. Float.max 1.0 q

let round_capacity_eps ~eps ~initial_tokens delta' =
  let q = int_of_float (ceil (delta' -. eps)) in
  Int.max 1 (initial_tokens + Int.max 0 q)

let round_budget ~granularity beta' =
  round_budget_eps ~eps:round_eps ~granularity beta'

let round_capacity ~initial_tokens delta' =
  round_capacity_eps ~eps:round_eps ~initial_tokens delta'

let solve ?params cfg =
  let builder = Socp_builder.build cfg in
  let t0 = Unix.gettimeofday () in
  let result = Model.solve ?params builder.Socp_builder.model in
  let elapsed = Unix.gettimeofday () -. t0 in
  let stats =
    {
      variables = Model.num_variables builder.Socp_builder.model;
      rows = Model.num_rows builder.Socp_builder.model;
      iterations = result.Model.raw.Socp.iterations;
      solve_time_s = elapsed;
    }
  in
  match result.Model.status with
  | Socp.Primal_infeasible ->
    Error
      (Infeasible
         "no budget and buffer assignment satisfies the throughput \
          requirement under the given processor, memory and capacity bounds")
  | Socp.Dual_infeasible ->
    (* Objective (5) has non-negative weights over non-negative
       variables, so unboundedness indicates a modelling error. *)
    Error (Solver_failure "cone program reported unbounded (dual infeasible)")
  | Socp.Iteration_limit | Socp.Stalled ->
    Error
      (Solver_failure
         (Format.asprintf "interior-point method stopped with status %a"
            Socp.pp_status result.Model.status))
  | Socp.Optimal ->
    let continuous = Socp_builder.extract cfg builder result in
    let granularity = Config.granularity cfg in
    let mapped_with eps =
      let budgets =
        List.map
          (fun w ->
            ( Config.task_id w,
              round_budget_eps ~eps ~granularity
                (continuous.Socp_builder.budget w) ))
          (Config.all_tasks cfg)
      in
      let capacities =
        List.map
          (fun b ->
            ( Config.buffer_id b,
              round_capacity_eps ~eps
                ~initial_tokens:(Config.initial_tokens cfg b)
                (continuous.Socp_builder.space b) ))
          (Config.all_buffers cfg)
      in
      {
        Config.budget = (fun w -> List.assoc (Config.task_id w) budgets);
        Config.capacity = (fun b -> List.assoc (Config.buffer_id b) capacities);
      }
    in
    (* Snap near-grid values first; if the exact re-check rejects that
       (possible only when the optimum genuinely sits past a grid
       point), fall back to the strictly conservative rounding. *)
    let mapped =
      let snapped = mapped_with round_eps in
      if Dataflow_model.verify cfg snapped = [] then snapped
      else mapped_with 0.0
    in
    let rounded_objective =
      List.fold_left
        (fun acc w ->
          acc +. (Config.task_weight cfg w *. mapped.Config.budget w))
        0.0 (Config.all_tasks cfg)
      +. List.fold_left
           (fun acc b ->
             acc
             +. Config.buffer_weight cfg b
                *. float_of_int
                     (Config.container_size cfg b
                     * (mapped.Config.capacity b - Config.initial_tokens cfg b)))
           0.0 (Config.all_buffers cfg)
    in
    let verification = Dataflow_model.verify cfg mapped in
    Ok
      {
        mapped;
        continuous;
        objective = continuous.Socp_builder.objective;
        rounded_objective;
        verification;
        stats;
      }
