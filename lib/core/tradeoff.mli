(** Budget/buffer trade-off exploration (the paper's experiments).

    The experiments of Section V explore the trade-off by sweeping a
    cap on the buffer capacities and minimising the budgets under each
    cap.  [capacity_sweep] automates this: for each capacity bound it
    installs the bound on the selected buffers, solves the joint
    program, and collects the resulting budgets. *)

type point = {
  cap : int;  (** the capacity bound applied in this run *)
  result : (Mapping.result, Mapping.error) Stdlib.result;
}

(** [capacity_sweep ?params ?policy ?pool cfg ~buffers ~caps] runs
    {!Mapping.solve} once per cap, setting [max_capacity] of every
    buffer in [buffers] to the cap on a private clone of [cfg] ([cfg]
    itself is left untouched).  Points come back in the order of
    [caps]; with [?pool] the candidate solves run concurrently, with
    results bit-identical to the sequential sweep (see
    {!Parallel.Pool.map_result}).  A candidate that raises is recorded
    as that point's [Solver_failure] instead of aborting the sweep;
    a fault plan restricted with [only=I] applies to the 0-based
    [I]-th cap.

    Durability (docs/robustness.md): [?journal] records every completed
    cap (including infeasible and failed verdicts — they are verdicts)
    and restores recorded caps instead of re-solving them.  A restored
    point carries the exact objectives, continuous values, rounded
    mapping and verification notes of the original solve, plus a
    {e freshly recomputed} exact certificate — the decoder re-certifies
    the restored mapping against the capped candidate configuration
    (the CRC guards the bits, the certifier guards the meaning) — but
    an empty [recovery] trace and zeroed [stats]: the solve did not run
    again.
    [?deadline] bounds the whole sweep, [?candidate_deadline] (seconds)
    each solve; both are polled inside the interior-point loop, and an
    expired candidate gets the [Timed_out] error — never journaled, so
    a resume retries it.  [?cancel] stops the sweep between candidates;
    abandoned caps are simply absent from the returned list
    ([?on_progress] reports the split).

    Observability (docs/observability.md): [?obs] rides into every
    candidate's solver and emits one {!Obs.Trace.Candidate} event per
    newly-solved cap (verdict ["ok"], ["infeasible"], ["skipped"] or
    ["timed out"]), one {!Obs.Trace.Restore} event per slot when a
    journal is consulted, and the pool's dispatch/join events.

    Warm starts: unless [~warm_start:false], one cold anchor solve on
    the first cap's bounds seeds every candidate's interior-point run
    (see {!Budgetbuf.Durability.warm_anchor}); because every candidate
    shares the same anchor, results are bit-identical across pool
    sizes and journal resumes.  Rungs past [Base] of the recovery
    ladder always run cold. *)
val capacity_sweep :
  ?params:Conic.Socp.params ->
  ?policy:Robust.Recovery.policy ->
  ?pool:Parallel.Pool.t ->
  ?deadline:Durable.Deadline.t ->
  ?candidate_deadline:float ->
  ?journal:Durable.Journal.t ->
  ?cancel:(unit -> bool) ->
  ?obs:Obs.Ctx.t ->
  ?on_progress:(Durable.Sweep.progress -> unit) ->
  ?warm_start:bool ->
  Taskgraph.Config.t ->
  buffers:Taskgraph.Config.buffer list ->
  caps:int list ->
  point list

(** [skipped points] lists the [(cap, reason)] of points whose solve
    failed (solver failures, not infeasibility verdicts), for the
    sweep reports' ["skipped: N (reason)"] summaries. *)
val skipped : point list -> (int * string) list

(** [budget_of point task] extracts a task's continuous budget from a
    sweep point, or [None] if that run failed. *)
val budget_of : point -> Taskgraph.Config.task -> float option

(** [budget_deltas points task] pairs consecutive successful sweep
    points [(c₁, β₁), (c₂, β₂), …] into [(c₂, β₁ − β₂), …]: the budget
    reduction bought by each capacity increase (the paper's
    Figure 2(b)). *)
val budget_deltas : point list -> Taskgraph.Config.task -> (int * float) list
