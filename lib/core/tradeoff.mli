(** Budget/buffer trade-off exploration (the paper's experiments).

    The experiments of Section V explore the trade-off by sweeping a
    cap on the buffer capacities and minimising the budgets under each
    cap.  [capacity_sweep] automates this: for each capacity bound it
    installs the bound on the selected buffers, solves the joint
    program, and collects the resulting budgets. *)

type point = {
  cap : int;  (** the capacity bound applied in this run *)
  result : (Mapping.result, Mapping.error) Stdlib.result;
}

(** [capacity_sweep ?params ?policy ?pool cfg ~buffers ~caps] runs
    {!Mapping.solve} once per cap, setting [max_capacity] of every
    buffer in [buffers] to the cap on a private clone of [cfg] ([cfg]
    itself is left untouched).  Points come back in the order of
    [caps]; with [?pool] the candidate solves run concurrently, with
    results bit-identical to the sequential sweep (see
    {!Parallel.Pool.map_result}).  A candidate that raises is recorded
    as that point's [Solver_failure] instead of aborting the sweep;
    a fault plan restricted with [only=I] applies to the 0-based
    [I]-th cap. *)
val capacity_sweep :
  ?params:Conic.Socp.params ->
  ?policy:Robust.Recovery.policy ->
  ?pool:Parallel.Pool.t ->
  Taskgraph.Config.t ->
  buffers:Taskgraph.Config.buffer list ->
  caps:int list ->
  point list

(** [skipped points] lists the [(cap, reason)] of points whose solve
    failed (solver failures, not infeasibility verdicts), for the
    sweep reports' ["skipped: N (reason)"] summaries. *)
val skipped : point list -> (int * string) list

(** [budget_of point task] extracts a task's continuous budget from a
    sweep point, or [None] if that run failed. *)
val budget_of : point -> Taskgraph.Config.task -> float option

(** [budget_deltas points task] pairs consecutive successful sweep
    points [(c₁, β₁), (c₂, β₂), …] into [(c₂, β₁ − β₂), …]: the budget
    reduction bought by each capacity increase (the paper's
    Figure 2(b)). *)
val budget_deltas : point list -> Taskgraph.Config.task -> (int * float) list
