(** Budget/buffer trade-off exploration (the paper's experiments).

    The experiments of Section V explore the trade-off by sweeping a
    cap on the buffer capacities and minimising the budgets under each
    cap.  [capacity_sweep] automates this: for each capacity bound it
    installs the bound on the selected buffers, solves the joint
    program, and collects the resulting budgets. *)

type point = {
  cap : int;  (** the capacity bound applied in this run *)
  result : (Mapping.result, Mapping.error) Stdlib.result;
}

(** [capacity_sweep cfg ~buffers ~caps] runs {!Mapping.solve} once per
    cap, temporarily setting [max_capacity] of every buffer in
    [buffers] to the cap.  Previous bounds are restored afterwards.
    Caps are processed in the given order. *)
val capacity_sweep :
  ?params:Conic.Socp.params ->
  Taskgraph.Config.t ->
  buffers:Taskgraph.Config.buffer list ->
  caps:int list ->
  point list

(** [budget_of point task] extracts a task's continuous budget from a
    sweep point, or [None] if that run failed. *)
val budget_of : point -> Taskgraph.Config.task -> float option

(** [budget_deltas points task] pairs consecutive successful sweep
    points [(c₁, β₁), (c₂, β₂), …] into [(c₂, β₁ − β₂), …]: the budget
    reduction bought by each capacity increase (the paper's
    Figure 2(b)). *)
val budget_deltas : point list -> Taskgraph.Config.task -> (int * float) list
