(** Multi-rate task graphs, compiled to the paper's single-rate model.

    The paper restricts the mapping flow to single-rate task graphs and
    names multi-rate support as the essential next step.  The deployable
    route today is refinement: expand the multi-rate graph so that every
    firing of a task within one graph iteration becomes its own
    single-rate task (with its own TDM window on the original task's
    processor), and every inter-firing dependency its own FIFO.  The
    result is an ordinary configuration that {!Mapping.solve} handles
    unchanged; Constraint (9) automatically charges the processor for
    all firing copies of a task.

    The refinement is conservative and implementable — each copy is a
    genuine schedulable entity — at the cost of granting each copy its
    own budget rather than one shared budget per original task, and one
    FIFO per dependency rather than one per original channel.  Both are
    reported back through {!provenance} so results can be aggregated
    per original task/channel. *)

type t
type rtask
type rchannel

(** [create ~granularity ()] starts an empty multi-rate specification
    (granularity as in {!Taskgraph.Config.create}). *)
val create : granularity:float -> unit -> t

(** [add_processor], [add_memory]: as in {!Taskgraph.Config}. *)
val add_processor :
  t -> name:string -> replenishment:float -> ?overhead:float -> unit ->
  Taskgraph.Config.proc

val add_memory : t -> name:string -> capacity:int -> Taskgraph.Config.memory

(** [add_graph t ~name ~period] declares a multi-rate graph whose
    throughput requirement is one full {e iteration} (every task firing
    its repetition-vector count) per [period] Mcycles. *)
val add_graph : t -> name:string -> period:float -> unit

(** [add_task t ~graph ~name ~proc ~wcet ?weight ()] adds a task
    (WCET per firing).
    @raise Invalid_argument on unknown graph or duplicate name. *)
val add_task :
  t -> graph:string -> name:string -> proc:Taskgraph.Config.proc ->
  wcet:float -> ?weight:float -> unit -> rtask

(** [add_channel t ~name ~src ~production ~dst ~consumption
    ?initial_tokens ?container_size ?weight ()] adds a rated channel:
    every firing of [src] produces [production] tokens, every firing of
    [dst] consumes [consumption].
    All compiled FIFOs (and the serialisation rings) are placed in the
    first declared memory.
    @raise Invalid_argument on non-positive rates or tasks of different
    graphs. *)
val add_channel :
  t -> name:string -> src:rtask -> production:int -> dst:rtask ->
  consumption:int -> ?initial_tokens:int -> ?container_size:int ->
  ?weight:float -> unit -> rchannel

type provenance = {
  config : Taskgraph.Config.t;  (** the compiled single-rate configuration *)
  copies : rtask -> Taskgraph.Config.task list;
      (** the firing copies of a task, in firing order *)
  fifos : rchannel -> Taskgraph.Config.buffer list;
      (** the dependency FIFOs a channel expanded into *)
  task_budget : Taskgraph.Config.mapped -> rtask -> float;
      (** total budget over all copies of the task *)
  channel_capacity : Taskgraph.Config.mapped -> rchannel -> int;
      (** total containers over all FIFOs of the channel *)
}

(** [compile ?serialize t] expands every graph (repetition vectors,
    inter-firing dependencies) into a single-rate configuration.  The
    per-iteration period of a graph becomes the period of the compiled
    graph (each copy fires exactly once per iteration).

    [serialize] (default [false]) adds a one-token FIFO ring through
    each task's copies, enforcing strictly in-order, one-in-flight
    execution — required for tasks carrying state between firings.
    Note that under the paper's conservative model a one-token ring
    costs a full worst-case round trip (≈ Σ(̺ − β) over the copies) per
    iteration, so tight periods can make a serialized compilation
    infeasible that is feasible with independent (stateless) firings.
    @return [Error msg] on an inconsistent graph. *)
val compile : ?serialize:bool -> t -> (provenance, string) Stdlib.result
