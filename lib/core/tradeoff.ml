module Config = Taskgraph.Config

type point = {
  cap : int;
  result : (Mapping.result, Mapping.error) Stdlib.result;
}

let capacity_sweep ?params ?pool cfg ~buffers ~caps =
  (* Each cap solves its own clone (handles are dense ids, valid across
     copies), so candidate solves are independent and can be batched on
     a pool; [cfg] is never touched. *)
  let solve_cap cap =
    let candidate = Config.copy cfg in
    List.iter (fun b -> Config.set_max_capacity candidate b (Some cap)) buffers;
    { cap; result = Mapping.solve ?params candidate }
  in
  match pool with
  | None -> List.map solve_cap caps
  | Some pool -> Parallel.Pool.map pool solve_cap caps

let budget_of point task =
  match point.result with
  | Error _ -> None
  | Ok r -> Some (r.Mapping.continuous.Socp_builder.budget task)

let budget_deltas points task =
  let successes =
    List.filter_map
      (fun p ->
        match budget_of p task with None -> None | Some b -> Some (p.cap, b))
      points
  in
  let rec pair = function
    | (_, b1) :: ((c2, b2) :: _ as rest) -> (c2, b1 -. b2) :: pair rest
    | [ _ ] | [] -> []
  in
  pair successes
