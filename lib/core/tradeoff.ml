module Config = Taskgraph.Config

type point = {
  cap : int;
  result : (Mapping.result, Mapping.error) Stdlib.result;
}

let capacity_sweep ?params cfg ~buffers ~caps =
  let saved = List.map (fun b -> (b, Config.max_capacity cfg b)) buffers in
  let restore () =
    List.iter (fun (b, cap) -> Config.set_max_capacity cfg b cap) saved
  in
  Fun.protect ~finally:restore (fun () ->
      List.map
        (fun cap ->
          List.iter (fun b -> Config.set_max_capacity cfg b (Some cap)) buffers;
          { cap; result = Mapping.solve ?params cfg })
        caps)

let budget_of point task =
  match point.result with
  | Error _ -> None
  | Ok r -> Some (r.Mapping.continuous.Socp_builder.budget task)

let budget_deltas points task =
  let successes =
    List.filter_map
      (fun p ->
        match budget_of p task with None -> None | Some b -> Some (p.cap, b))
      points
  in
  let rec pair = function
    | (_, b1) :: ((c2, b2) :: _ as rest) -> (c2, b1 -. b2) :: pair rest
    | [ _ ] | [] -> []
  in
  pair successes
