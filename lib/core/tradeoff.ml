module Config = Taskgraph.Config
module Recovery = Robust.Recovery
module Fault = Robust.Fault

type point = {
  cap : int;
  result : (Mapping.result, Mapping.error) Stdlib.result;
}

(* Journal payload of one sweep point (docs/formats.md).  A successful
   solve is encoded as a faithful projection of [Mapping.result]:
   objectives, the continuous budget/λ per task and space/capacity per
   buffer (in dense-id order), the rounded mapping, and the
   verification / sim-check notes.  The recovery trace and timing stats
   are *not* journaled — a restored point reports [recovery = []] and
   zeroed stats, documented as "restored from journal".  The exact
   certificate is not journaled either, deliberately: the decoder
   re-certifies the restored mapping against the candidate
   configuration, so the CRC guards the bits and the certifier guards
   the meaning.  A timed-out candidate is never journaled, so a resume
   retries it. *)
let encode_result cfg (r : Mapping.result) =
  let buf = Buffer.create 256 in
  let tok s =
    if Buffer.length buf > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf s
  in
  let flt f = tok (Durability.float_to_token f) in
  let tasks = Config.all_tasks cfg and buffers = Config.all_buffers cfg in
  tok "ok";
  flt r.Mapping.objective;
  flt r.Mapping.rounded_objective;
  tok "t";
  tok (string_of_int (List.length tasks));
  List.iter
    (fun w ->
      flt (r.Mapping.continuous.Socp_builder.budget w);
      flt (r.Mapping.continuous.Socp_builder.lambda w);
      flt (r.Mapping.mapped.Config.budget w))
    tasks;
  tok "b";
  tok (string_of_int (List.length buffers));
  List.iter
    (fun b ->
      flt (r.Mapping.continuous.Socp_builder.space b);
      flt (r.Mapping.continuous.Socp_builder.capacity b);
      tok (string_of_int (r.Mapping.mapped.Config.capacity b)))
    buffers;
  tok "v";
  tok (string_of_int (List.length r.Mapping.verification));
  List.iter
    (fun v -> tok (Printf.sprintf "%S" (Violation.encode v)))
    r.Mapping.verification;
  tok "s";
  tok (string_of_int (List.length r.Mapping.sim_check));
  List.iter (fun n -> tok (Printf.sprintf "%S" n)) r.Mapping.sim_check;
  Buffer.contents buf

let encode_point cfg p =
  match p.result with
  | Ok r -> Some (encode_result cfg r)
  | Error (Mapping.Infeasible msg) -> Some (Printf.sprintf "infeasible %S" msg)
  | Error (Mapping.Solver_failure msg) -> Some (Printf.sprintf "failure %S" msg)
  | Error (Mapping.Timed_out _) -> None

(* [candidate] is the capped clone the point was originally solved on:
   the restored mapping is re-certified against it, not merely
   replayed. *)
let decode_result cfg ~candidate ib =
  let module D = Durability in
  let obj = D.scan_float ib and robj = D.scan_float ib in
  let tasks = Config.all_tasks cfg and buffers = Config.all_buffers cfg in
  D.expect_token ib "t";
  if D.scan_int ib <> List.length tasks then
    raise (Scanf.Scan_failure "task count mismatch");
  let per_task =
    List.map
      (fun w ->
        let budget = D.scan_float ib in
        let lambda = D.scan_float ib in
        let mapped = D.scan_float ib in
        (Config.task_id w, (budget, lambda, mapped)))
      tasks
  in
  D.expect_token ib "b";
  if D.scan_int ib <> List.length buffers then
    raise (Scanf.Scan_failure "buffer count mismatch");
  let per_buffer =
    List.map
      (fun b ->
        let space = D.scan_float ib in
        let capacity = D.scan_float ib in
        let mapped = D.scan_int ib in
        (Config.buffer_id b, (space, capacity, mapped)))
      buffers
  in
  let scan_notes tag =
    D.expect_token ib tag;
    List.init (D.scan_int ib) (fun _ -> ()) |> List.map (fun () -> D.scan_quoted ib)
  in
  let verification =
    List.map
      (fun s ->
        match Violation.decode s with
        | Some v -> v
        | None -> raise (Scanf.Scan_failure "malformed violation"))
      (scan_notes "v")
  in
  let sim_check = scan_notes "s" in
  let task_field pick w = pick (List.assoc (Config.task_id w) per_task) in
  let buffer_field pick b = pick (List.assoc (Config.buffer_id b) per_buffer) in
  let mapped =
    {
      Config.budget = task_field (fun (_, _, m) -> m);
      Config.capacity = buffer_field (fun (_, _, m) -> m);
    }
  in
  {
    Mapping.mapped;
    continuous =
      {
        Socp_builder.budget = task_field (fun (b, _, _) -> b);
        lambda = task_field (fun (_, l, _) -> l);
        space = buffer_field (fun (s, _, _) -> s);
        capacity = buffer_field (fun (_, c, _) -> c);
        objective = obj;
      };
    objective = obj;
    rounded_objective = robj;
    verification;
    (* CRC already guarded the bits; re-certifying guards the meaning
       (and gives a reused entry the original's certificate instead of
       an empty one). *)
    certificate = Certify.check candidate mapped;
    sim_check;
    (* Restored from journal: the solve was not re-run, so there is no
       recovery trace and no timing to report. *)
    recovery = [];
    stats =
      {
        Mapping.variables = 0;
        rows = 0;
        iterations = 0;
        attempts = 0;
        solve_time_s = 0.0;
        kkt_fallbacks = 0;
      };
  }

let decode_point cfg ~candidate cap payload =
  match
    let ib = Scanf.Scanning.from_string payload in
    match Durability.scan_token ib with
    | "ok" -> Some { cap; result = Ok (decode_result cfg ~candidate ib) }
    | "infeasible" ->
      Some
        { cap; result = Error (Mapping.Infeasible (Durability.scan_quoted ib)) }
    | "failure" ->
      Some
        {
          cap;
          result = Error (Mapping.Solver_failure (Durability.scan_quoted ib));
        }
    | _ -> None
  with
  | v -> v
  | exception (Scanf.Scan_failure _ | Failure _ | End_of_file | Not_found) ->
    None

let capacity_sweep ?params ?policy ?pool ?deadline ?candidate_deadline ?journal
    ?cancel ?obs ?on_progress ?(warm_start = true) cfg ~buffers ~caps =
  let policy =
    match policy with Some p -> p | None -> Recovery.default_policy ()
  in
  let deadline = Option.value deadline ~default:Durable.Deadline.none in
  let caps = Array.of_list caps in
  (* One cold anchor solve (on the first candidate's bounds) seeds every
     candidate; see [Durability.warm_anchor] for why anchoring — not
     neighbour-chaining — is what keeps warm starts pool- and
     resume-deterministic. *)
  let warm =
    if (not warm_start) || Array.length caps = 0 then None
    else begin
      let anchor = Config.copy cfg in
      List.iter
        (fun b -> Config.set_max_capacity anchor b (Some caps.(0)))
        buffers;
      Durability.warm_anchor
        ?params:(Durability.params_with_deadline params ~deadline ~candidate_deadline)
        anchor
    end
  in
  (* Each cap solves its own clone (handles are dense ids, valid across
     copies), so candidate solves are independent and can be batched on
     a pool; [cfg] is never touched.  Exceptions become that point's
     [Solver_failure] so one bad candidate cannot abort the sweep. *)
  let solve_cap index =
    let cap = caps.(index) in
    let candidate_policy =
      { policy with Recovery.fault = Fault.for_candidate policy.Recovery.fault ~index }
    in
    let params =
      Durability.params_with_warm
        (Durability.params_with_obs
           (Durability.params_with_deadline params ~deadline ~candidate_deadline)
           obs)
        warm
    in
    let result =
      match
        let candidate = Config.copy cfg in
        List.iter
          (fun b -> Config.set_max_capacity candidate b (Some cap))
          buffers;
        Mapping.solve ?params ~policy:candidate_policy candidate
      with
      | r -> r
      | exception e ->
        Error
          (Mapping.Solver_failure
             ("uncaught exception: " ^ Printexc.to_string e))
    in
    (match obs with
    | None -> ()
    | Some o ->
      let verdict =
        match result with
        | Ok _ -> "ok"
        | Error (Mapping.Infeasible _) -> "infeasible"
        | Error (Mapping.Timed_out _) -> "timed out"
        | Error (Mapping.Solver_failure _) -> "skipped"
      in
      Obs.Ctx.emit o (Obs.Trace.Candidate { index; verdict }));
    { cap; result }
  in
  let results, progress =
    Durable.Sweep.run ?pool ?journal ?obs ~deadline ?cancel
      ~encode:(encode_point cfg)
      ~decode:(fun i payload ->
        (* Rebuild the capped candidate the point was solved on, so the
           restored mapping is re-certified against the right bounds. *)
        let candidate = Config.copy cfg in
        List.iter
          (fun b -> Config.set_max_capacity candidate b (Some caps.(i)))
          buffers;
        decode_point cfg ~candidate caps.(i) payload)
      ~n:(Array.length caps) solve_cap
  in
  (match on_progress with None -> () | Some f -> f progress);
  List.filter_map Fun.id (Array.to_list results)

let skipped points =
  List.filter_map
    (fun p ->
      match p.result with
      | Error ((Mapping.Solver_failure _ | Mapping.Timed_out _) as e) ->
        Some (p.cap, Mapping.short_reason e)
      | Error (Mapping.Infeasible _) | Ok _ -> None)
    points

let budget_of point task =
  match point.result with
  | Error _ -> None
  | Ok r -> Some (r.Mapping.continuous.Socp_builder.budget task)

let budget_deltas points task =
  let successes =
    List.filter_map
      (fun p ->
        match budget_of p task with None -> None | Some b -> Some (p.cap, b))
      points
  in
  let rec pair = function
    | (_, b1) :: ((c2, b2) :: _ as rest) -> (c2, b1 -. b2) :: pair rest
    | [ _ ] | [] -> []
  in
  pair successes
