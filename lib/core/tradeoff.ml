module Config = Taskgraph.Config
module Recovery = Robust.Recovery
module Fault = Robust.Fault

type point = {
  cap : int;
  result : (Mapping.result, Mapping.error) Stdlib.result;
}

let capacity_sweep ?params ?policy ?pool cfg ~buffers ~caps =
  let policy =
    match policy with Some p -> p | None -> Recovery.default_policy ()
  in
  (* Each cap solves its own clone (handles are dense ids, valid across
     copies), so candidate solves are independent and can be batched on
     a pool; [cfg] is never touched.  Exceptions become that point's
     [Solver_failure] so one bad candidate cannot abort the sweep. *)
  let solve_cap (index, cap) =
    let candidate_policy =
      { policy with Recovery.fault = Fault.for_candidate policy.Recovery.fault ~index }
    in
    let result =
      match
        let candidate = Config.copy cfg in
        List.iter
          (fun b -> Config.set_max_capacity candidate b (Some cap))
          buffers;
        Mapping.solve ?params ~policy:candidate_policy candidate
      with
      | r -> r
      | exception e ->
        Error
          (Mapping.Solver_failure
             ("uncaught exception: " ^ Printexc.to_string e))
    in
    { cap; result }
  in
  let indexed = List.mapi (fun i cap -> (i, cap)) caps in
  match pool with
  | None -> List.map solve_cap indexed
  | Some pool ->
    List.map2
      (fun (_, cap) r ->
        match r with
        | Ok p -> p
        | Error e ->
          {
            cap;
            result =
              Error
                (Mapping.Solver_failure
                   ("uncaught exception: " ^ Printexc.to_string e));
          })
      indexed
      (Parallel.Pool.map_result pool solve_cap indexed)

let skipped points =
  List.filter_map
    (fun p ->
      match p.result with
      | Error (Mapping.Solver_failure _ as e) ->
        Some (p.cap, Mapping.short_reason e)
      | Error (Mapping.Infeasible _) | Ok _ -> None)
    points

let budget_of point task =
  match point.result with
  | Error _ -> None
  | Ok r -> Some (r.Mapping.continuous.Socp_builder.budget task)

let budget_deltas points task =
  let successes =
    List.filter_map
      (fun p ->
        match budget_of p task with None -> None | Some b -> Some (p.cap, b))
      points
  in
  let rec pair = function
    | (_, b1) :: ((c2, b2) :: _ as rest) -> (c2, b1 -. b2) :: pair rest
    | [ _ ] | [] -> []
  in
  pair successes
