module Config = Taskgraph.Config
module Rat = Exact.Rat
module Bigint = Exact.Bigint

type witness = { starts : (string * Rat.t) list }

type refutation =
  | Violated of Violation.t
  | Positive_cycle of {
      graph : string;
      actors : string list;
      excess : Rat.t;
    }

type t = Certified of witness | Refuted of refutation

exception Refute of refutation

let refute r = raise (Refute r)

(* ρ(v1) = ̺ − β and ρ(v2) = ̺·χ/β for one graph, every edge weight
   w(e) = ρ(src) − δ(e)·µ — the longest-path formulation of the PAS
   existence condition, mirrored from the float analysis but on exact
   rationals.  Returns the actor start times when a PAS exists. *)
let certify_graph cfg (mapped : Config.mapped) g =
  let graph = Config.graph_name cfg g in
  let tasks = Config.tasks cfg g and buffers = Config.buffers cfg g in
  let mu = Rat.of_float (Config.period cfg g) in
  let index = Hashtbl.create 16 in
  let n = ref 0 in
  let names = Array.make (2 * List.length tasks) "" in
  let rho = Array.make (2 * List.length tasks) Rat.zero in
  List.iter
    (fun w ->
      let name = Config.task_name cfg w in
      let repl = Rat.of_float (Config.replenishment cfg (Config.task_proc cfg w)) in
      let beta = Rat.of_float (mapped.Config.budget w) in
      let chi = Rat.of_float (Config.wcet cfg w) in
      Hashtbl.replace index (Config.task_id w) !n;
      names.(!n) <- name ^ ".1";
      rho.(!n) <- Rat.sub repl beta;
      names.(!n + 1) <- name ^ ".2";
      rho.(!n + 1) <- Rat.div (Rat.mul repl chi) beta;
      n := !n + 2)
    tasks;
  let edges = ref [] in
  let add_edge src dst tokens =
    edges := (src, dst, Rat.sub rho.(src) (Rat.mul (Rat.of_int tokens) mu)) :: !edges
  in
  List.iter
    (fun w ->
      let v1 = Hashtbl.find index (Config.task_id w) in
      add_edge v1 (v1 + 1) 0;
      add_edge (v1 + 1) (v1 + 1) 1)
    tasks;
  List.iter
    (fun b ->
      let iota = Config.initial_tokens cfg b in
      let gamma = mapped.Config.capacity b in
      if gamma < iota then
        (* the SRDF model is undefined; the float checker reports this
           as a throughput failure, and so do we *)
        refute
          (Violated
             (Violation.Throughput { graph; period = Config.period cfg g }));
      let src = Hashtbl.find index (Config.task_id (Config.buffer_src cfg b)) in
      let dst = Hashtbl.find index (Config.task_id (Config.buffer_dst cfg b)) in
      add_edge (src + 1) dst iota;
      add_edge (dst + 1) src (gamma - iota))
    buffers;
  let edges = Array.of_list (List.rev !edges) in
  match Exact.Bf.longest_path ~nodes:!n edges with
  | Exact.Bf.Positive_cycle cycle ->
      let actors =
        List.map
          (fun e ->
            let s, _, _ = edges.(e) in
            names.(s))
          cycle
      in
      let excess =
        List.fold_left
          (fun acc e ->
            let _, _, w = edges.(e) in
            Rat.add acc w)
          Rat.zero cycle
      in
      refute (Positive_cycle { graph; actors; excess })
  | Exact.Bf.Feasible d ->
      (* Latency of the earliest PAS against the graph's bound, for
         graphs with a unique source/sink pair (same convention as the
         float checker). *)
      (match Config.latency_bound cfg g with
      | None -> ()
      | Some bound ->
          let has_input w =
            List.exists (fun b -> Config.buffer_dst cfg b = w) buffers
          and has_output w =
            List.exists (fun b -> Config.buffer_src cfg b = w) buffers
          in
          (match
             ( List.filter (fun w -> not (has_input w)) tasks,
               List.filter (fun w -> not (has_output w)) tasks )
           with
          | [ src ], [ snk ] ->
              let v_src = Hashtbl.find index (Config.task_id src) in
              let v_snk = Hashtbl.find index (Config.task_id snk) + 1 in
              let latency =
                Rat.sub (Rat.add d.(v_snk) rho.(v_snk)) d.(v_src)
              in
              if Rat.compare latency (Rat.of_float bound) > 0 then
                refute
                  (Violated
                     (Violation.Latency
                        { graph; latency = Rat.to_float latency; bound }))
          | _ -> ()));
      List.mapi (fun i di -> (names.(i), di)) (Array.to_list d)

let check_exn cfg (mapped : Config.mapped) =
  (* Budgets first: everything downstream divides by them. *)
  List.iter
    (fun w ->
      let beta = mapped.Config.budget w in
      let name = Config.task_name cfg w in
      if not (Float.is_finite beta) then
        refute
          (Violated
             (Violation.Non_finite
                { what = "budget of task " ^ name; value = beta }));
      let repl = Config.replenishment cfg (Config.task_proc cfg w) in
      if
        Rat.sign (Rat.of_float beta) <= 0
        || Rat.compare (Rat.of_float beta) (Rat.of_float repl) > 0
      then
        refute
          (Violated
             (Violation.Budget_range
                { task = name; budget = beta; replenishment = repl })))
    (Config.all_tasks cfg);
  (* Throughput (and latency) of every graph, via exact Bellman-Ford. *)
  let starts =
    List.concat_map (certify_graph cfg mapped) (Config.graphs cfg)
  in
  (* Processor capacity, constraint (4) plus overhead — exact, with no
     epsilon indulgence. *)
  List.iter
    (fun p ->
      let used =
        List.fold_left
          (fun acc w -> Rat.add acc (Rat.of_float (mapped.Config.budget w)))
          (Rat.of_float (Config.overhead cfg p))
          (Config.tasks_on cfg p)
      in
      let repl = Config.replenishment cfg p in
      if Rat.compare used (Rat.of_float repl) > 0 then
        refute
          (Violated
             (Violation.Processor_capacity
                {
                  proc = Config.proc_name cfg p;
                  used = Rat.to_float used;
                  capacity = repl;
                })))
    (Config.processors cfg);
  (* Memory pre-reservation: integers, so already exact. *)
  List.iter
    (fun m ->
      let used =
        List.fold_left
          (fun acc b ->
            acc + (mapped.Config.capacity b * Config.container_size cfg b))
          0 (Config.buffers_in cfg m)
      in
      if used > Config.memory_capacity cfg m then
        refute
          (Violated
             (Violation.Memory_capacity
                {
                  memory = Config.memory_name cfg m;
                  used;
                  capacity = Config.memory_capacity cfg m;
                })))
    (Config.memories cfg);
  List.iter
    (fun b ->
      match Config.max_capacity cfg b with
      | Some cap when mapped.Config.capacity b > cap ->
          refute
            (Violated
               (Violation.Buffer_bound
                  {
                    buffer = Config.buffer_name cfg b;
                    capacity = mapped.Config.capacity b;
                    bound = cap;
                  }))
      | Some _ | None -> ())
    (Config.all_buffers cfg);
  Certified { starts }

let check cfg mapped =
  match check_exn cfg mapped with
  | verdict -> verdict
  | exception Refute r -> Refuted r
  | exception Invalid_argument msg ->
      (* a non-finite configuration constant slipped past the explicit
         guards; refuse to certify rather than crash *)
      Refuted (Violated (Violation.Non_finite { what = msg; value = Float.nan }))

let certified = function Certified _ -> true | Refuted _ -> false

let summary = function
  | Certified w -> Printf.sprintf "ok (exact, %d start times)" (List.length w.starts)
  | Refuted (Violated v) -> "refuted: " ^ Violation.to_string v
  | Refuted (Positive_cycle { graph; actors; excess }) ->
      Printf.sprintf "refuted: task graph %s: positive cycle %s (excess %s)"
        graph
        (String.concat " -> " actors)
        (Rat.to_string excess)

let pp fmt t = Format.pp_print_string fmt (summary t)
