(** End-to-end latency of a mapped task graph.

    Once budgets and buffer capacities are fixed, the periodic
    admissible schedule realising the throughput also yields latency
    numbers: data item [k] is accepted when the source's waiting actor
    starts its [k]-th firing and delivered when the sink's processing
    actor finishes its [k]-th firing, so under a PAS with start times
    [s] the per-item latency is the constant

    {v s(dst.v2) + ρ(dst.v2) − s(src.v1) v}

    The start times used here are the component-wise smallest ones
    (Bellman–Ford potentials), i.e. the earliest admissible periodic
    schedule. *)

(** [bound cfg g mapped ~src ~dst] is the latency (in Mcycles) from the
    activation of [src] to the completion of [dst] under the earliest
    PAS with period [µ(g)]; [None] when the mapped graph admits no such
    schedule.
    @raise Invalid_argument if the tasks do not belong to [g]. *)
val bound :
  Taskgraph.Config.t ->
  Taskgraph.Config.graph ->
  Taskgraph.Config.mapped ->
  src:Taskgraph.Config.task ->
  dst:Taskgraph.Config.task ->
  float option

(** [chain_bound cfg g mapped] is [bound] from the (unique) task with
    no incoming buffer to the (unique) task with no outgoing buffer.
    @raise Invalid_argument when the graph is not a chain in that
    sense. *)
val chain_bound :
  Taskgraph.Config.t -> Taskgraph.Config.graph -> Taskgraph.Config.mapped ->
  float option
