type t =
  | Throughput of { graph : string; period : float }
  | Processor_capacity of { proc : string; used : float; capacity : float }
  | Memory_capacity of { memory : string; used : int; capacity : int }
  | Latency of { graph : string; latency : float; bound : float }
  | Buffer_bound of { buffer : string; capacity : int; bound : int }
  | Budget_range of { task : string; budget : float; replenishment : float }
  | Non_finite of { what : string; value : float }

let constraint_id = function
  | Throughput _ -> "throughput"
  | Processor_capacity _ -> "proc-capacity"
  | Memory_capacity _ -> "mem-capacity"
  | Latency _ -> "latency"
  | Buffer_bound _ -> "buffer-bound"
  | Budget_range _ -> "budget-range"
  | Non_finite _ -> "non-finite"

let to_string = function
  | Throughput { graph; period } ->
      Printf.sprintf "task graph %s: no periodic schedule with period %g exists"
        graph period
  | Processor_capacity { proc; used; capacity } ->
      Printf.sprintf "processor %s: allocated budgets %g exceed the interval %g"
        proc used capacity
  | Memory_capacity { memory; used; capacity } ->
      Printf.sprintf "memory %s: buffer footprint %d exceeds capacity %d" memory
        used capacity
  | Latency { graph; latency; bound } ->
      Printf.sprintf "task graph %s: latency %g exceeds its bound %g" graph
        latency bound
  | Buffer_bound { buffer; capacity; bound } ->
      Printf.sprintf "buffer %s: capacity %d exceeds its bound %d" buffer
        capacity bound
  | Budget_range { task; budget; replenishment } ->
      Printf.sprintf "task %s: budget %g outside (0, %g]" task budget
        replenishment
  | Non_finite { what; value } ->
      Printf.sprintf "%s is not finite (%g)" what value

let pp fmt v = Format.pp_print_string fmt (to_string v)

let ftok = Durability.float_to_token

let encode = function
  | Throughput { graph; period } ->
      Printf.sprintf "tput %S %s" graph (ftok period)
  | Processor_capacity { proc; used; capacity } ->
      Printf.sprintf "proc %S %s %s" proc (ftok used) (ftok capacity)
  | Memory_capacity { memory; used; capacity } ->
      Printf.sprintf "mem %S %d %d" memory used capacity
  | Latency { graph; latency; bound } ->
      Printf.sprintf "lat %S %s %s" graph (ftok latency) (ftok bound)
  | Buffer_bound { buffer; capacity; bound } ->
      Printf.sprintf "bufb %S %d %d" buffer capacity bound
  | Budget_range { task; budget; replenishment } ->
      Printf.sprintf "brange %S %s %s" task (ftok budget) (ftok replenishment)
  | Non_finite { what; value } ->
      Printf.sprintf "nonfin %S %s" what (ftok value)

let decode s =
  let ib = Scanf.Scanning.from_string s in
  let tok () = Durability.scan_token ib in
  let quoted () = Durability.scan_quoted ib in
  let f () = Durability.scan_float ib in
  let i () = Durability.scan_int ib in
  match
    match tok () with
    | "tput" ->
        let graph = quoted () in
        Throughput { graph; period = f () }
    | "proc" ->
        let proc = quoted () in
        let used = f () in
        Processor_capacity { proc; used; capacity = f () }
    | "mem" ->
        let memory = quoted () in
        let used = i () in
        Memory_capacity { memory; used; capacity = i () }
    | "lat" ->
        let graph = quoted () in
        let latency = f () in
        Latency { graph; latency; bound = f () }
    | "bufb" ->
        let buffer = quoted () in
        let capacity = i () in
        Buffer_bound { buffer; capacity; bound = i () }
    | "brange" ->
        let task = quoted () in
        let budget = f () in
        Budget_range { task; budget; replenishment = f () }
    | "nonfin" ->
        let what = quoted () in
        Non_finite { what; value = f () }
    | _ -> raise (Scanf.Scan_failure "unknown violation tag")
  with
  | v -> Some v
  | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> None
