module Config = Taskgraph.Config
module Model = Conic.Model

type t = {
  model : Model.model;
  budget_var : Config.task -> Model.var;
  lambda_var : Config.task -> Model.var;
  space_var : Config.buffer -> Model.var;
  start_var : Config.task -> [ `A1 | `A2 ] -> Model.var;
}

let build cfg =
  let m = Model.create () in
  let budget = Hashtbl.create 16
  and lambda = Hashtbl.create 16
  and space = Hashtbl.create 16
  and start1 = Hashtbl.create 16
  and start2 = Hashtbl.create 16 in
  let g = Config.granularity cfg in
  (* Variables. *)
  List.iter
    (fun w ->
      let n = Config.task_name cfg w in
      let id = Config.task_id w in
      Hashtbl.replace budget id (Model.variable m ("beta'." ^ n));
      Hashtbl.replace lambda id (Model.variable m ("lambda." ^ n));
      Hashtbl.replace start1 id (Model.variable m ("s." ^ n ^ ".1"));
      Hashtbl.replace start2 id (Model.variable m ("s." ^ n ^ ".2")))
    (Config.all_tasks cfg);
  List.iter
    (fun b ->
      Hashtbl.replace space (Config.buffer_id b)
        (Model.variable m ("delta'." ^ Config.buffer_name cfg b)))
    (Config.all_buffers cfg);
  let bvar w = Hashtbl.find budget (Config.task_id w) in
  let lvar w = Hashtbl.find lambda (Config.task_id w) in
  let dvar b = Hashtbl.find space (Config.buffer_id b) in
  let svar1 w = Hashtbl.find start1 (Config.task_id w) in
  let svar2 w = Hashtbl.find start2 (Config.task_id w) in
  (* Firing duration of the processing actor v2 of task w, as the affine
     expression ̺·χ·λ(w) (Constraint (7)'s left-hand side). *)
  let rho2 w =
    let p = Config.task_proc cfg w in
    Model.term (Config.replenishment cfg p *. Config.wcet cfg w) (lvar w)
  in
  List.iter
    (fun w ->
      let p = Config.task_proc cfg w in
      let repl = Config.replenishment cfg p in
      let mu = Config.period cfg (Config.task_graph cfg w) in
      (* Positivity of the surrogates. *)
      Model.add_ge0 m (Model.var (bvar w));
      Model.add_ge0 m (Model.var (lvar w));
      (* (6): the E1 queue v1 → v2, no tokens:
         s(v2) ≥ s(v1) + (̺ − β′). *)
      Model.add_ge m
        (Model.var (svar2 w))
        (Model.affine ~const:repl [ (1.0, svar1 w); (-1.0, bvar w) ]);
      (* (7) on the self-loop v2 → v2 (one token): ̺·χ·λ ≤ µ. *)
      Model.add_le m (rho2 w) (Model.const mu);
      (* (8): λ·β′ ≥ 1 as a second-order cone. *)
      Model.add_hyperbolic m ~a:(Model.var (lvar w)) ~b:(Model.var (bvar w))
        ~bound:1.0)
    (Config.all_tasks cfg);
  List.iter
    (fun b ->
      let wa = Config.buffer_src cfg b and wb = Config.buffer_dst cfg b in
      let mu = Config.period cfg (Config.task_graph cfg wa) in
      let iota = float_of_int (Config.initial_tokens cfg b) in
      Model.add_ge0 m (Model.var (dvar b));
      (* (7) on the data queue a2 → b1 (ι tokens):
         s(b1) ≥ s(a2) + ̺·χ·λ(a) − ι·µ. *)
      Model.add_ge m
        (Model.var (svar1 wb))
        (Model.add
           (Model.affine ~const:(-.iota *. mu) [ (1.0, svar2 wa) ])
           (rho2 wa));
      (* (7) on the space queue b2 → a1 (δ′ tokens):
         s(a1) ≥ s(b2) + ̺·χ·λ(b) − δ′·µ. *)
      Model.add_ge m
        (Model.var (svar1 wa))
        (Model.add
           (Model.affine [ (1.0, svar2 wb); (-.mu, dvar b) ])
           (rho2 wb));
      (* Optional capacity bound: ι + δ′ ≤ cap.  A bound equal to the
         initial tokens pins δ′ = 0 exactly; expressing that by
         substitution keeps the cone program's interior non-empty. *)
      match Config.max_capacity cfg b with
      | None -> ()
      | Some cap when cap = Config.initial_tokens cfg b ->
        Model.fix m (dvar b) 0.0
      | Some cap ->
        Model.add_le m
          (Model.var (dvar b))
          (Model.const (float_of_int cap -. iota)))
    (Config.all_buffers cfg);
  (* (9): per-processor budget capacity with rounding reserve. *)
  List.iter
    (fun p ->
      let tasks = Config.tasks_on cfg p in
      if tasks <> [] then begin
        let lhs =
          Model.sum (List.map (fun w -> Model.var (bvar w)) tasks)
        in
        let reserve = float_of_int (List.length tasks) *. g in
        Model.add_le m lhs
          (Model.const
             (Config.replenishment cfg p -. Config.overhead cfg p -. reserve))
      end)
    (Config.processors cfg);
  (* (10): per-memory capacity with one reserved container per buffer. *)
  List.iter
    (fun mem ->
      let bufs = Config.buffers_in cfg mem in
      if bufs <> [] then begin
        let lhs =
          Model.sum
            (List.map
               (fun b ->
                 let zeta = float_of_int (Config.container_size cfg b) in
                 let iota = float_of_int (Config.initial_tokens cfg b) in
                 Model.affine ~const:(zeta *. (iota +. 1.0))
                   [ (zeta, dvar b) ])
               bufs)
        in
        Model.add_le m lhs
          (Model.const (float_of_int (Config.memory_capacity cfg mem)))
      end)
    (Config.memories cfg);
  (* Latency bounds (extension): for a graph with a bound L and a
     unique source/sink pair, the end-to-end latency of the periodic
     schedule is s(sink.v2) + ̺·χ·λ(sink) − s(src.v1) — affine in the
     variables, so it joins the program as one more row. *)
  List.iter
    (fun gr ->
      match Config.latency_bound cfg gr with
      | None -> ()
      | Some bound ->
        let tasks = Config.tasks cfg gr and buffers = Config.buffers cfg gr in
        let has_input w =
          List.exists (fun b -> Config.buffer_dst cfg b = w) buffers
        in
        let has_output w =
          List.exists (fun b -> Config.buffer_src cfg b = w) buffers
        in
        (match
           ( List.filter (fun w -> not (has_input w)) tasks,
             List.filter (fun w -> not (has_output w)) tasks )
         with
        | [ src ], [ snk ] ->
          Model.add_le m
            (Model.add
               (Model.affine [ (1.0, svar2 snk); (-1.0, svar1 src) ])
               (rho2 snk))
            (Model.const bound)
        | _ ->
          invalid_arg
            (Printf.sprintf
               "Socp_builder: graph %s has a latency bound but no unique \
                source/sink pair"
               (Config.graph_name cfg gr))))
    (Config.graphs cfg);
  (* Objective (5). *)
  let objective =
    Model.sum
      (List.map
         (fun w -> Model.term (Config.task_weight cfg w) (bvar w))
         (Config.all_tasks cfg)
      @ List.map
          (fun b ->
            Model.term
              (Config.buffer_weight cfg b
              *. float_of_int (Config.container_size cfg b))
              (dvar b))
          (Config.all_buffers cfg))
  in
  Model.minimize m objective;
  {
    model = m;
    budget_var = bvar;
    lambda_var = lvar;
    space_var = dvar;
    start_var = (fun w -> function `A1 -> svar1 w | `A2 -> svar2 w);
  }

type continuous = {
  budget : Config.task -> float;
  lambda : Config.task -> float;
  space : Config.buffer -> float;
  capacity : Config.buffer -> float;
  objective : float;
}

let extract cfg t (result : Model.result) =
  {
    budget = (fun w -> result.Model.value (t.budget_var w));
    lambda = (fun w -> result.Model.value (t.lambda_var w));
    space = (fun b -> result.Model.value (t.space_var b));
    capacity =
      (fun b ->
        float_of_int (Config.initial_tokens cfg b)
        +. result.Model.value (t.space_var b));
    objective = result.Model.objective;
  }
