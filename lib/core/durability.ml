module Socp = Conic.Socp
module Deadline = Durable.Deadline

(* Per-candidate solver parameters: the whole-sweep deadline combined
   with a fresh per-candidate budget (started now, i.e. when the
   candidate starts), installed as the Socp iteration-loop hook.  When
   neither limit is set the caller's params pass through untouched, so
   an unlimited sweep keeps a hook-free iteration loop. *)
let params_with_deadline params ~deadline ~candidate_deadline =
  let dl =
    match candidate_deadline with
    | None -> deadline
    | Some s -> Deadline.combine deadline (Deadline.after s)
  in
  match Deadline.check dl with
  | None -> params
  | Some expired ->
    let base = Option.value params ~default:Socp.default_params in
    Some { base with Socp.deadline = Some expired }

(* Install an observability context as the [Socp.params.obs] hook so
   the solver, the recovery ladder and [Mapping] all see it without
   per-call plumbing.  [None] passes the params through untouched —
   the uninstrumented path stays hook-free. *)
let params_with_obs params obs =
  match obs with
  | None -> params
  | Some _ ->
    let base = Option.value params ~default:Socp.default_params in
    Some { base with Socp.obs }

(* Install a warm-start point.  [None] passes through untouched, so
   cold sweeps keep the caller's exact params (and bit-identical
   behaviour with pre-warm-start releases). *)
let params_with_warm params warm =
  match warm with
  | None -> params
  | Some _ ->
    let base = Option.value params ~default:Socp.default_params in
    Some { base with Socp.warm }

(* One cold "anchor" solve whose solution seeds every candidate of a
   sweep.  Anchoring (rather than chaining each candidate to its
   neighbour) keeps the sweep order-independent: candidates solved in
   parallel lanes, in journal-restored order, or alone all see the
   same seed, which is what makes warm starts pool- and resume-safe.
   The anchor strips observability (its iterations must not pollute
   the sweep's trace or metrics), fault injection (it is not a
   candidate; plans count attempts of candidates only) and any stale
   warm point.  Any outcome other than [Optimal] — including an
   exception — yields [None]: the sweep silently falls back to cold
   starts. *)
let warm_anchor ?params cfg =
  let params =
    let base = Option.value params ~default:Socp.default_params in
    { base with Socp.obs = None; inject = None; warm = None }
  in
  match
    let b = Socp_builder.build cfg in
    Conic.Model.solve ~params b.Socp_builder.model
  with
  | r when r.Conic.Model.status = Socp.Optimal ->
    let raw = r.Conic.Model.raw in
    Some { Socp.wx = raw.Socp.x; ws = raw.Socp.s; wz = raw.Socp.z }
  | _ -> None
  | exception _ -> None

(* The effective context of a call that takes both [?obs] and
   [?params]: an explicit [?obs] wins, else whatever already rides in
   the params (as threaded by an enclosing sweep). *)
let obs_of params obs =
  match obs with
  | Some _ -> obs
  | None -> (
    match (params : Socp.params option) with
    | Some p -> p.Socp.obs
    | None -> None)

(* Journal payloads render floats as hex literals ("%h"), which
   [float_of_string] parses back bit-exactly — a resumed sweep must
   reproduce the uninterrupted run to the last digit. *)
let float_to_token = Printf.sprintf "%h"

(* Whitespace-separated token scanners for payload decoding.  All of
   them raise on malformed input ([Scanf.Scan_failure], [Failure]);
   decoders catch and drop the record, which merely re-solves the
   candidate. *)
let scan_token ib = Scanf.bscanf ib " %s" Fun.id
let scan_float ib = float_of_string (scan_token ib)
let scan_int ib = int_of_string (scan_token ib)
let scan_quoted ib = Scanf.bscanf ib " %S" Fun.id

let expect_token ib tok =
  if not (String.equal (scan_token ib) tok) then
    raise (Scanf.Scan_failure ("expected " ^ tok))
