module Config = Taskgraph.Config
module Srdf = Dataflow.Srdf
module Analysis = Dataflow.Analysis

type critical = {
  ratio : float;
  tasks : Config.task list;
  buffers : Config.buffer list;
}

let build_model cfg g (mapped : Config.mapped) =
  match
    Dataflow_model.build cfg g ~budget:mapped.Config.budget
      ~capacity:mapped.Config.capacity
  with
  | model -> Some model
  | exception Invalid_argument _ -> None

let throughput_slack cfg g mapped =
  match Dataflow_model.min_feasible_period cfg g mapped with
  | None -> None
  | Some mcr -> Some (Config.period cfg g -. mcr)

let critical_cycle cfg g mapped =
  match build_model cfg g mapped with
  | None -> None
  | Some model -> begin
    let srdf = model.Dataflow_model.srdf in
    match Dataflow.Howard.critical_cycle srdf with
    | None -> None
    | Some (ratio, actors) ->
      let on_cycle = Hashtbl.create 16 in
      List.iter
        (fun v -> Hashtbl.replace on_cycle (Srdf.actor_id v) ())
        actors;
      let mem v = Hashtbl.mem on_cycle (Srdf.actor_id v) in
      let tasks =
        List.filter
          (fun w ->
            mem (model.Dataflow_model.actor1 w)
            || mem (model.Dataflow_model.actor2 w))
          (Config.tasks cfg g)
      in
      (* A buffer is critical when the cycle runs through one of its
         queues, i.e. through both endpoints of the data or space
         queue. *)
      let buffers =
        List.filter
          (fun b ->
            let src = Config.buffer_src cfg b
            and dst = Config.buffer_dst cfg b in
            (mem (model.Dataflow_model.actor2 src)
            && mem (model.Dataflow_model.actor1 dst))
            || (mem (model.Dataflow_model.actor2 dst)
               && mem (model.Dataflow_model.actor1 src)))
          (Config.buffers cfg g)
      in
      Some { ratio; tasks; buffers }
  end

let budget_slack ?(tolerance = 1e-6) cfg g (mapped : Config.mapped) w =
  if Config.task_graph cfg w <> g then
    invalid_arg "Sensitivity.budget_slack: task of another graph";
  let current = mapped.Config.budget w in
  let feasible beta =
    beta > 0.0
    && Dataflow_model.throughput_ok cfg g
         {
           mapped with
           Config.budget =
             (fun w' ->
               if Config.task_id w' = Config.task_id w then beta
               else mapped.Config.budget w');
         }
  in
  if not (feasible current) then 0.0
  else begin
    (* Bisect the smallest feasible budget in (0, current]. *)
    let rec bisect lo hi iters =
      (* Invariant: hi feasible, lo infeasible (or 0). *)
      if iters = 0 || hi -. lo <= tolerance then hi
      else begin
        let mid = 0.5 *. (lo +. hi) in
        if feasible mid then bisect lo mid (iters - 1)
        else bisect mid hi (iters - 1)
      end
    in
    current -. bisect 0.0 current 100
  end

let pp_critical cfg ppf c =
  Format.fprintf ppf "critical cycle at ratio %.4f: tasks {%s}, buffers {%s}"
    c.ratio
    (String.concat ", " (List.map (Config.task_name cfg) c.tasks))
    (String.concat ", " (List.map (Config.buffer_name cfg) c.buffers))
