module Config = Taskgraph.Config

type strategy = Exhaustive of int | Greedy_utilization | First_fit

type outcome = {
  config : Config.t;
  assignment : (string * string) list;
  result : Mapping.result;
  explored : int;
}

let rebind_full cfg ~assign_proc ~assign_mem =
  let fresh = Config.create ~granularity:(Config.granularity cfg) () in
  let procs =
    List.map
      (fun p ->
        ( Config.proc_id p,
          Config.add_processor fresh ~name:(Config.proc_name cfg p)
            ~replenishment:(Config.replenishment cfg p)
            ~overhead:(Config.overhead cfg p) () ))
      (Config.processors cfg)
  in
  let mems =
    List.map
      (fun m ->
        ( Config.memory_id m,
          Config.add_memory fresh ~name:(Config.memory_name cfg m)
            ~capacity:(Config.memory_capacity cfg m) ))
      (Config.memories cfg)
  in
  List.iter
    (fun g ->
      let fresh_g =
        Config.add_graph fresh ~name:(Config.graph_name cfg g)
          ~period:(Config.period cfg g)
          ?latency_bound:(Config.latency_bound cfg g) ()
      in
      let tasks =
        List.map
          (fun w ->
            let p = assign_proc w in
            ( Config.task_id w,
              Config.add_task fresh fresh_g ~name:(Config.task_name cfg w)
                ~proc:(List.assoc (Config.proc_id p) procs)
                ~wcet:(Config.wcet cfg w)
                ~weight:(Config.task_weight cfg w) () ))
          (Config.tasks cfg g)
      in
      List.iter
        (fun b ->
          ignore
            (Config.add_buffer fresh fresh_g
               ~name:(Config.buffer_name cfg b)
               ~src:(List.assoc (Config.task_id (Config.buffer_src cfg b)) tasks)
               ~dst:(List.assoc (Config.task_id (Config.buffer_dst cfg b)) tasks)
               ~memory:(List.assoc (Config.memory_id (assign_mem b)) mems)
               ~container_size:(Config.container_size cfg b)
               ~initial_tokens:(Config.initial_tokens cfg b)
               ~weight:(Config.buffer_weight cfg b)
               ?max_capacity:(Config.max_capacity cfg b) ()))
        (Config.buffers cfg g))
    (Config.graphs cfg);
  fresh

let rebind cfg ~assign =
  rebind_full cfg ~assign_proc:assign ~assign_mem:(Config.buffer_memory cfg)

let assignment_of cfg assign =
  List.map
    (fun w -> (Config.task_name cfg w, Config.proc_name cfg (assign w)))
    (Config.all_tasks cfg)

(* Reserved capacity of a task on any processor: its minimal budget
   (̺·χ/µ rounded to the granularity) plus the granule Constraint (9)
   pre-reserves, computed against the candidate processor. *)
let reservation cfg w p =
  let mu = Config.period cfg (Config.task_graph cfg w) in
  let need = Config.replenishment cfg p *. Config.wcet cfg w /. mu in
  Mapping.round_budget ~granularity:(Config.granularity cfg) need
  +. Config.granularity cfg

(* Greedy placements return an assignment table keyed by task id, or
   None when some task fits nowhere. *)
let place cfg ~order =
  let procs = Array.of_list (Config.processors cfg) in
  let slack =
    Array.map
      (fun p -> Config.replenishment cfg p -. Config.overhead cfg p)
      procs
  in
  let table = Hashtbl.create 16 in
  let ok = ref true in
  List.iter
    (fun w ->
      match order w procs slack with
      | Some i ->
        slack.(i) <- slack.(i) -. reservation cfg w procs.(i);
        Hashtbl.replace table (Config.task_id w) procs.(i)
      | None -> ok := false)
    (let tasks = Config.all_tasks cfg in
     tasks);
  if !ok then Some (fun w -> Hashtbl.find table (Config.task_id w)) else None

let greedy_utilization cfg =
  let utilisation w =
    Config.wcet cfg w /. Config.period cfg (Config.task_graph cfg w)
  in
  let sorted =
    List.sort
      (fun w1 w2 -> compare (utilisation w2) (utilisation w1))
      (Config.all_tasks cfg)
  in
  (* Place heavy tasks first, each on the processor with most slack
     remaining after its reservation. *)
  let procs = Array.of_list (Config.processors cfg) in
  let slack =
    Array.map
      (fun p -> Config.replenishment cfg p -. Config.overhead cfg p)
      procs
  in
  let table = Hashtbl.create 16 in
  let ok = ref true in
  List.iter
    (fun w ->
      let best = ref (-1) and best_slack = ref neg_infinity in
      Array.iteri
        (fun i p ->
          let r = reservation cfg w p in
          if slack.(i) -. r >= 0.0 && slack.(i) -. r > !best_slack then begin
            best := i;
            best_slack := slack.(i) -. r
          end)
        procs;
      if !best < 0 then ok := false
      else begin
        slack.(!best) <- slack.(!best) -. reservation cfg w procs.(!best);
        Hashtbl.replace table (Config.task_id w) procs.(!best)
      end)
    sorted;
  if !ok then Some (fun w -> Hashtbl.find table (Config.task_id w)) else None

let first_fit cfg =
  place cfg ~order:(fun w procs slack ->
      let found = ref None in
      Array.iteri
        (fun i p ->
          if !found = None && slack.(i) -. reservation cfg w p >= 0.0 then
            found := Some i)
        procs;
      !found)

let solve_binding ?params cfg assign =
  let candidate = rebind cfg ~assign in
  match Mapping.solve ?params candidate with
  | Ok r when r.Mapping.verification = [] -> Some (candidate, r)
  | Ok _ | Error _ -> None

let optimize ?(strategy = Greedy_utilization) ?params cfg =
  let tasks = Array.of_list (Config.all_tasks cfg) in
  let procs = Array.of_list (Config.processors cfg) in
  if Array.length procs = 0 then Error "no processors"
  else begin
    match strategy with
    | Greedy_utilization | First_fit -> begin
      let placement =
        match strategy with
        | Greedy_utilization -> greedy_utilization cfg
        | First_fit | Exhaustive _ -> first_fit cfg
      in
      match placement with
      | None -> Error "no processor can host some task's minimal budget"
      | Some assign -> begin
        match solve_binding ?params cfg assign with
        | None -> Error "the heuristic binding is infeasible"
        | Some (config, result) ->
          Ok
            {
              config;
              assignment = assignment_of cfg assign;
              result;
              explored = 1;
            }
      end
    end
    | Exhaustive limit ->
      if limit < 1 then Error "exhaustive search limit must be >= 1"
      else begin
        let n = Array.length tasks and k = Array.length procs in
        let best = ref None in
        let explored = ref 0 in
        (* Enumerate assignments as base-k counters over the tasks,
           stopping at the limit. *)
        let assignment = Array.make n 0 in
        let continue_ = ref true in
        while !continue_ && !explored < limit do
          incr explored;
          let assign w =
            (* Tasks array order matches all_tasks order. *)
            let rec index i =
              if Config.task_id tasks.(i) = Config.task_id w then i
              else index (i + 1)
            in
            procs.(assignment.(index 0))
          in
          (match solve_binding ?params cfg assign with
          | Some (config, result) ->
            let better =
              match !best with
              | None -> true
              | Some (_, _, prev) ->
                result.Mapping.rounded_objective
                < prev.Mapping.rounded_objective -. 1e-9
            in
            if better then
              best := Some (assignment_of cfg assign, config, result)
          | None -> ());
          (* Increment the counter. *)
          let rec bump i =
            if i >= n then continue_ := false
            else if assignment.(i) + 1 < k then assignment.(i) <- assignment.(i) + 1
            else begin
              assignment.(i) <- 0;
              bump (i + 1)
            end
          in
          bump 0
        done;
        match !best with
        | None -> Error "no feasible binding found within the search limit"
        | Some (assignment, config, result) ->
          Ok { config; assignment; result; explored = !explored }
      end
  end

(* ------------------------------------------------------------------ *)
(* Buffer-to-memory binding                                            *)
(* ------------------------------------------------------------------ *)

let rebind_memories cfg ~assign =
  rebind_full cfg ~assign_proc:(Config.task_proc cfg) ~assign_mem:assign

let memory_assignment_of cfg assign =
  List.map
    (fun b -> (Config.buffer_name cfg b, Config.memory_name cfg (assign b)))
    (Config.all_buffers cfg)

(* Minimal footprint of a buffer in any memory: one container beyond the
   initially filled ones (the reserve Constraint (10) keeps for the
   rounding). *)
let footprint cfg b =
  Config.container_size cfg b * (Config.initial_tokens cfg b + 1)

let place_memories cfg ~heaviest_first ~best_fit =
  let mems = Array.of_list (Config.memories cfg) in
  if Array.length mems = 0 then None
  else begin
    let slack = Array.map (fun m -> Config.memory_capacity cfg m) mems in
    let buffers =
      let all = Config.all_buffers cfg in
      if heaviest_first then
        List.sort (fun b1 b2 -> compare (footprint cfg b2) (footprint cfg b1)) all
      else all
    in
    let table = Hashtbl.create 16 in
    let ok = ref true in
    List.iter
      (fun b ->
        let need = footprint cfg b in
        let chosen = ref (-1) in
        Array.iteri
          (fun i _ ->
            if slack.(i) >= need then
              if best_fit then begin
                if !chosen < 0 || slack.(i) > slack.(!chosen) then chosen := i
              end
              else if !chosen < 0 then chosen := i)
          mems;
        if !chosen < 0 then ok := false
        else begin
          slack.(!chosen) <- slack.(!chosen) - need;
          Hashtbl.replace table (Config.buffer_id b) mems.(!chosen)
        end)
      buffers;
    if !ok then Some (fun b -> Hashtbl.find table (Config.buffer_id b))
    else None
  end

let solve_memory_binding ?params cfg assign =
  let candidate = rebind_memories cfg ~assign in
  match Mapping.solve ?params candidate with
  | Ok r when r.Mapping.verification = [] -> Some (candidate, r)
  | Ok _ | Error _ -> None

let optimize_memories ?(strategy = Greedy_utilization) ?params cfg =
  let buffers = Array.of_list (Config.all_buffers cfg) in
  let mems = Array.of_list (Config.memories cfg) in
  if Array.length mems = 0 then Error "no memories"
  else begin
    match strategy with
    | Greedy_utilization | First_fit -> begin
      let placement =
        match strategy with
        | Greedy_utilization ->
          place_memories cfg ~heaviest_first:true ~best_fit:true
        | First_fit | Exhaustive _ ->
          place_memories cfg ~heaviest_first:false ~best_fit:false
      in
      match placement with
      | None -> Error "no memory can host some buffer's minimal footprint"
      | Some assign -> begin
        match solve_memory_binding ?params cfg assign with
        | None -> Error "the heuristic memory placement is infeasible"
        | Some (config, result) ->
          Ok
            {
              config;
              assignment = memory_assignment_of cfg assign;
              result;
              explored = 1;
            }
      end
    end
    | Exhaustive limit ->
      if limit < 1 then Error "exhaustive search limit must be >= 1"
      else begin
        let n = Array.length buffers and k = Array.length mems in
        let best = ref None in
        let explored = ref 0 in
        let counter = Array.make n 0 in
        let continue_ = ref true in
        while !continue_ && !explored < limit do
          incr explored;
          let assign b =
            let rec index i =
              if Config.buffer_id buffers.(i) = Config.buffer_id b then i
              else index (i + 1)
            in
            mems.(counter.(index 0))
          in
          (match solve_memory_binding ?params cfg assign with
          | Some (config, result) ->
            let better =
              match !best with
              | None -> true
              | Some (_, _, prev) ->
                result.Mapping.rounded_objective
                < prev.Mapping.rounded_objective -. 1e-9
            in
            if better then
              best := Some (memory_assignment_of cfg assign, config, result)
          | None -> ());
          let rec bump i =
            if i >= n then continue_ := false
            else if counter.(i) + 1 < k then counter.(i) <- counter.(i) + 1
            else begin
              counter.(i) <- 0;
              bump (i + 1)
            end
          in
          bump 0
        done;
        match !best with
        | None -> Error "no feasible memory placement within the search limit"
        | Some (assignment, config, result) ->
          Ok { config; assignment; result; explored = !explored }
      end
  end
