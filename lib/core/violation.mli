(** Structured constraint violations, shared by the float checker
    ({!Dataflow_model.verify}) and the exact certifier ({!Certify}).

    Each variant names the violated constraint, the system objects
    involved and the two sides of the inequality, so callers can
    pattern-match on the cause instead of grepping message strings;
    {!to_string} renders the exact diagnostic lines the CLI and
    {!Report} have always printed. *)

type t =
  | Throughput of { graph : string; period : float }
      (** No periodic admissible schedule with the required period. *)
  | Processor_capacity of { proc : string; used : float; capacity : float }
      (** Allocated budgets plus overhead exceed the replenishment
          interval (constraint (4)). *)
  | Memory_capacity of { memory : string; used : int; capacity : int }
      (** Pre-reserved buffer footprint exceeds the memory. *)
  | Latency of { graph : string; latency : float; bound : float }
  | Buffer_bound of { buffer : string; capacity : int; bound : int }
      (** A rounded capacity exceeds the buffer's declared maximum. *)
  | Budget_range of { task : string; budget : float; replenishment : float }
      (** A budget outside (0, ̺]: the SRDF model is undefined. *)
  | Non_finite of { what : string; value : float }
      (** A NaN or infinite number where a finite one was required. *)

(** Short stable identifier of the violated constraint, e.g.
    ["throughput"] or ["proc-capacity"]. *)
val constraint_id : t -> string

(** The human-readable diagnostic line (byte-compatible with the
    historical string-list diagnostics). *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** Single-line token encoding for sweep journals; [decode] inverts it
    ([None] on malformed input). Floats round-trip bit-exactly. *)
val encode : t -> string

val decode : string -> t option
