(** Exact rational certification of mapped configurations.

    The float pipeline rounds a continuous optimum onto the discrete
    grids and re-verifies it with epsilon-tolerant floating-point
    Bellman–Ford — arithmetic with the very rounding error the check
    is guarding against.  This module rebuilds the SRDF constraint
    graph of the {e rounded} mapping in exact rational arithmetic
    (ρ(v1) = ̺ − β and ρ(v2) = ̺·χ/β are exact rationals once β is a
    float) and decides constraints (1)–(10) with no tolerance at all:
    a periodic admissible schedule with period µ via exact
    Bellman–Ford, processor capacity including the scheduler overhead,
    memory pre-reservation, latency and buffer bounds.

    The verdict is machine-checkable either way: [Certified] carries
    the exact start-time potentials (substituting them into every
    constraint verifies the certificate by rational evaluation alone),
    [Refuted] carries the violated constraint or a positive-weight
    cycle with its exact excess. *)

type witness = {
  starts : (string * Exact.Rat.t) list;
      (** Exact start time per SRDF actor ("task.1"/"task.2"),
          concatenated over all task graphs. *)
}

type refutation =
  | Violated of Violation.t
  | Positive_cycle of {
      graph : string;
      actors : string list;  (** SRDF actors along the cycle. *)
      excess : Exact.Rat.t;
          (** Exact cycle weight: how far the cycle overshoots the
              period budget per iteration. *)
    }

type t = Certified of witness | Refuted of refutation

(** [check cfg mapped] certifies or refutes the mapped configuration.
    Never raises: non-finite budgets refute with
    {!Violation.Non_finite}. *)
val check : Taskgraph.Config.t -> Taskgraph.Config.mapped -> t

val certified : t -> bool

(** One-line rendering: ["ok (exact, N start times)"] or
    ["refuted: ..."]. *)
val summary : t -> string

val pp : Format.formatter -> t -> unit
