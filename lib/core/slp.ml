module Config = Taskgraph.Config
module Lp = Simplex.Lp

type outcome = {
  mapped : Config.mapped;
  objective : float;
  iterations : int;
  converged : bool;
  verified : bool;
}

type error = Infeasible of string | Solver_failure of string

let pp_error ppf = function
  | Infeasible msg -> Format.fprintf ppf "infeasible: %s" msg
  | Solver_failure msg -> Format.fprintf ppf "solver failure: %s" msg

(* One LP solve at frozen reciprocals λ; returns the new budgets and
   continuous space tokens. *)
let lp_step cfg lambda =
  let p = Lp.create () in
  let s1 = Hashtbl.create 16 and s2 = Hashtbl.create 16 in
  let bvar = Hashtbl.create 16 and dvar = Hashtbl.create 16 in
  List.iter
    (fun w ->
      let n = Config.task_name cfg w in
      Hashtbl.replace s1 (Config.task_id w)
        (Lp.add_variable p ~name:("s." ^ n ^ ".1") ~lb:None ());
      Hashtbl.replace s2 (Config.task_id w)
        (Lp.add_variable p ~name:("s." ^ n ^ ".2") ~lb:None ());
      Hashtbl.replace bvar (Config.task_id w)
        (Lp.add_variable p ~name:("beta." ^ n) ()))
    (Config.all_tasks cfg);
  List.iter
    (fun b ->
      let iota = Config.initial_tokens cfg b in
      let ub =
        match Config.max_capacity cfg b with
        | None -> None
        | Some cap -> Some (float_of_int (cap - iota))
      in
      Hashtbl.replace dvar (Config.buffer_id b)
        (Lp.add_variable p
           ~name:("delta." ^ Config.buffer_name cfg b)
           ~lb:(Some 0.0) ~ub ()))
    (Config.all_buffers cfg);
  let sv1 w = Hashtbl.find s1 (Config.task_id w)
  and sv2 w = Hashtbl.find s2 (Config.task_id w)
  and bv w = Hashtbl.find bvar (Config.task_id w)
  and dv b = Hashtbl.find dvar (Config.buffer_id b) in
  let rho2 w =
    let proc = Config.task_proc cfg w in
    Config.replenishment cfg proc *. Config.wcet cfg w *. lambda w
  in
  List.iter
    (fun w ->
      let proc = Config.task_proc cfg w in
      let repl = Config.replenishment cfg proc in
      (* (6) with β as a variable: s2 − s1 + β ≥ ̺. *)
      ignore
        (Lp.add_constraint p
           [ (1.0, sv2 w); (-1.0, sv1 w); (1.0, bv w) ]
           Lp.Ge repl))
    (Config.all_tasks cfg);
  List.iter
    (fun b ->
      let wa = Config.buffer_src cfg b and wb = Config.buffer_dst cfg b in
      let mu = Config.period cfg (Config.task_graph cfg wa) in
      let iota = float_of_int (Config.initial_tokens cfg b) in
      ignore
        (Lp.add_constraint p
           [ (1.0, sv1 wb); (-1.0, sv2 wa) ]
           Lp.Ge
           (rho2 wa -. (iota *. mu)));
      ignore
        (Lp.add_constraint p
           [ (1.0, sv1 wa); (-1.0, sv2 wb); (mu, dv b) ]
           Lp.Ge (rho2 wb)))
    (Config.all_buffers cfg);
  let g = Config.granularity cfg in
  List.iter
    (fun proc ->
      let tasks = Config.tasks_on cfg proc in
      if tasks <> [] then begin
        let bound =
          Config.replenishment cfg proc -. Config.overhead cfg proc
          -. (float_of_int (List.length tasks) *. g)
        in
        ignore
          (Lp.add_constraint p
             (List.map (fun w -> (1.0, bv w)) tasks)
             Lp.Le bound)
      end)
    (Config.processors cfg);
  List.iter
    (fun mem ->
      let bufs = Config.buffers_in cfg mem in
      if bufs <> [] then begin
        let consumed =
          List.fold_left
            (fun acc b ->
              acc
              + (Config.container_size cfg b * (Config.initial_tokens cfg b + 1)))
            0 bufs
        in
        ignore
          (Lp.add_constraint p
             (List.map
                (fun b -> (float_of_int (Config.container_size cfg b), dv b))
                bufs)
             Lp.Le
             (float_of_int (Config.memory_capacity cfg mem - consumed)))
      end)
    (Config.memories cfg);
  Lp.set_objective p
    (List.map (fun w -> (Config.task_weight cfg w, bv w)) (Config.all_tasks cfg)
    @ List.map
        (fun b ->
          ( Config.buffer_weight cfg b
            *. float_of_int (Config.container_size cfg b),
            dv b ))
        (Config.all_buffers cfg));
  match Lp.solve p with
  | Lp.Infeasible ->
    Error (Infeasible "LP step infeasible for the frozen reciprocals")
  | Lp.Unbounded -> Error (Solver_failure "LP step unbounded")
  | Lp.Optimal { value; _ } ->
    Ok ((fun w -> value (bv w)), fun b -> value (dv b))

let solve ?(max_iterations = 25) ?(tolerance = 1e-6) ?(initial = 1.0) cfg =
  if max_iterations < 1 then invalid_arg "Slp.solve: max_iterations < 1";
  let g = Config.granularity cfg in
  (* The λ update clamps β into [max(g, ̺χ/µ), fair share] so the
     frozen durations stay meaningful. *)
  let min_budget w =
    let p = Config.task_proc cfg w in
    let mu = Config.period cfg (Config.task_graph cfg w) in
    Float.max g (Config.replenishment cfg p *. Config.wcet cfg w /. mu)
  in
  let fair w =
    let p = Config.task_proc cfg w in
    (Config.replenishment cfg p -. Config.overhead cfg p)
    /. float_of_int (List.length (Config.tasks_on cfg (Config.task_proc cfg w)))
    -. g
  in
  let clamp w beta = Float.max (min_budget w) (Float.min (fair w) beta) in
  let beta0 w = clamp w (initial *. fair w) in
  let budgets = Hashtbl.create 16 in
  List.iter
    (fun w -> Hashtbl.replace budgets (Config.task_id w) (beta0 w))
    (Config.all_tasks cfg);
  let rec iterate k _last_space =
    let lambda w = 1.0 /. Hashtbl.find budgets (Config.task_id w) in
    match lp_step cfg lambda with
    | Error _ as e -> e
    | Ok (beta, space) ->
      let delta = ref 0.0 in
      List.iter
        (fun w ->
          let fresh = clamp w (beta w) in
          let prev = Hashtbl.find budgets (Config.task_id w) in
          delta := Float.max !delta (Float.abs (fresh -. prev));
          Hashtbl.replace budgets (Config.task_id w) fresh)
        (Config.all_tasks cfg);
      if !delta <= tolerance || k + 1 >= max_iterations then
        Ok (k + 1, !delta <= tolerance, space)
      else iterate (k + 1) (Some space)
  in
  match iterate 0 None with
  | Error _ as e -> e
  | Ok (iterations, converged, space) ->
    let mapped =
      {
        Config.budget =
          (fun w ->
            Mapping.round_budget ~granularity:g
              (Hashtbl.find budgets (Config.task_id w)));
        Config.capacity =
          (fun b ->
            Mapping.round_capacity
              ~initial_tokens:(Config.initial_tokens cfg b)
              (space b));
      }
    in
    let objective =
      List.fold_left
        (fun acc w ->
          acc +. (Config.task_weight cfg w *. mapped.Config.budget w))
        0.0 (Config.all_tasks cfg)
      +. List.fold_left
           (fun acc b ->
             acc
             +. Config.buffer_weight cfg b
                *. float_of_int
                     (Config.container_size cfg b
                     * (mapped.Config.capacity b - Config.initial_tokens cfg b)))
           0.0 (Config.all_buffers cfg)
    in
    let verified = Dataflow_model.verify cfg mapped = [] in
    Ok { mapped; objective; iterations; converged; verified }
