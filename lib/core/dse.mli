(** Throughput-oriented design-space exploration.

    The paper takes the throughput requirement [µ] as an input; the
    dual question a designer asks is "what is the best throughput these
    resources can sustain?".  This module answers it by bisecting over
    a common scale factor on all graph periods and re-running the joint
    budget/buffer program at each probe — yielding the minimum feasible
    period and, swept against a buffer-capacity cap, the classic
    throughput/buffer trade-off curve (Stuijk et al., DAC 2007, the
    two-phase flow the paper's Section I contrasts against). *)

(** [with_periods cfg ~scale] clones [cfg] with every task graph's
    period multiplied by [scale].
    @raise Invalid_argument if [scale <= 0]. *)
val with_periods : Taskgraph.Config.t -> scale:float -> Taskgraph.Config.t

(** [min_period_scale ?tolerance ?params ?policy ?on_probe cfg] is the
    smallest factor [s] such that the configuration with all periods
    scaled by [s] is feasible, found by bisection to relative
    [tolerance] (default 1e-4).  [s ≤ 1] means the stated requirements
    hold with margin; [s > 1] means they must be relaxed by that
    factor.  [None] when even a 1000× relaxation is infeasible (a
    structural dead end such as an over-full memory — or a solver
    failure that survived the whole recovery ladder on every probe).

    All probes share one internal clone of [cfg] whose periods are
    rescaled in place — [cfg] itself is never mutated.  [policy] is
    forwarded to every probe's {!Mapping.solve}.  [on_probe] is called
    with the scale of every feasibility probe (solve); the regression
    tests use it to pin the probe count so the fast path cannot
    silently regress.  [on_failure] is called with every probe error
    that is a solver failure (not an infeasibility verdict): the sweep
    drivers use it to tell a broken candidate from a genuine dead end
    and report it as skipped instead of infeasible.  [on_feasible] is
    called with the full {!Mapping.result} of every probe that passes
    verification; because the bisection only ever narrows onto feasible
    probes, the last such call describes the accepted scale — the sweep
    drivers use it to read the exact certificate ({!Certify}) of the
    mapping behind the answer.

    When [params] carries a {!Conic.Socp.params.deadline} and a probe
    times out, the whole search is abandoned ([None]) after reporting
    the timeout through [on_failure] — past the deadline, bisecting on
    further timed-out probes could only manufacture garbage bounds. *)
val min_period_scale :
  ?tolerance:float ->
  ?params:Conic.Socp.params ->
  ?policy:Robust.Recovery.policy ->
  ?obs:Obs.Ctx.t ->
  ?on_probe:(float -> unit) ->
  ?on_failure:(Mapping.error -> unit) ->
  ?on_feasible:(Mapping.result -> unit) ->
  Taskgraph.Config.t ->
  float option

(** One capacity point of a throughput curve.  [outcome] is
    [Ok (Some period)] for a feasible cap, [Ok None] when no period up
    to the 1000× relaxation is feasible under that cap, and
    [Error reason] when the candidate failed rather than proved
    infeasible — its solver failed past the whole recovery ladder, or
    its evaluation crashed (the sweep carries on — see
    {!Parallel.Pool.map_result}).  [certified] reports whether the
    mapping behind the accepted period carries an exact rational
    certificate ({!Certify}); it is only meaningful for
    [Ok (Some _)] outcomes and [false] otherwise.  The flag is
    journaled, so a restored point keeps the original verdict. *)
type curve_point = {
  cap : int;
  outcome : (float option, string) Stdlib.result;
  certified : bool;
}

(** [curve_points points] keeps the feasible [(cap, period)] pairs, in
    sweep order — the historical shape of the curve. *)
val curve_points : curve_point list -> (int * float) list

(** [curve_skipped points] lists the [(cap, reason)] of candidates that
    failed outright (not the merely infeasible ones). *)
val curve_skipped : curve_point list -> (int * string) list

(** [throughput_curve ?params ?policy ?pool cfg ~caps] sweeps a shared
    buffer capacity cap and reports, per cap, the minimal feasible
    period of the {e first} task graph (single-graph configurations
    being the common case).  Every cap is an independent bisection over
    independent solves; with [?pool] they are evaluated concurrently,
    with output bit-identical to the sequential sweep.  A failing
    candidate is reported in its own {!curve_point.outcome} instead of
    aborting the sweep.  A fault plan restricted with [only=I] applies
    to the 0-based [I]-th cap of the sweep.

    Durability (docs/robustness.md): [?journal] records every completed
    cap and restores the ones already present, so a killed sweep
    resumed against the same journal re-solves only the missing caps —
    with bit-identical points, because journal payloads round-trip
    floats exactly.  [?deadline] bounds the whole sweep and
    [?candidate_deadline] (seconds) each cap's bisection; both are also
    polled inside the interior-point iteration loop, so even a single
    slow solve stops promptly with a ["timed out"] outcome (which is
    {e not} journaled — a resume retries it).  [?cancel] is polled
    between candidates (cooperative cancellation — Ctrl-C handling in
    the CLI); candidates in flight are drained, not aborted.  A sweep
    cut short returns the points actually evaluated, in cap order;
    [?on_progress] reports the restored/solved/abandoned split.

    Observability (docs/observability.md): [?obs] rides into every
    probe's solver and emits one {!Obs.Trace.Candidate} event per
    newly-evaluated cap (verdict ["feasible"], ["infeasible"],
    ["skipped"] or ["timed out"]), one {!Obs.Trace.Restore} event per
    slot when a journal is consulted, and the pool's dispatch/join
    events.

    Warm starts: unless [~warm_start:false], each candidate runs one
    cold anchor solve (its own caps, unscaled period) whose solution
    seeds every probe of the bisection (see
    {!Budgetbuf.Durability.warm_anchor}); the seed is a pure function
    of the candidate, so points are bit-identical across pool sizes
    and journal resumes. *)
val throughput_curve :
  ?params:Conic.Socp.params ->
  ?policy:Robust.Recovery.policy ->
  ?pool:Parallel.Pool.t ->
  ?deadline:Durable.Deadline.t ->
  ?candidate_deadline:float ->
  ?journal:Durable.Journal.t ->
  ?cancel:(unit -> bool) ->
  ?obs:Obs.Ctx.t ->
  ?on_progress:(Durable.Sweep.progress -> unit) ->
  ?warm_start:bool ->
  Taskgraph.Config.t ->
  caps:int list ->
  curve_point list
