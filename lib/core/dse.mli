(** Throughput-oriented design-space exploration.

    The paper takes the throughput requirement [µ] as an input; the
    dual question a designer asks is "what is the best throughput these
    resources can sustain?".  This module answers it by bisecting over
    a common scale factor on all graph periods and re-running the joint
    budget/buffer program at each probe — yielding the minimum feasible
    period and, swept against a buffer-capacity cap, the classic
    throughput/buffer trade-off curve (Stuijk et al., DAC 2007, the
    two-phase flow the paper's Section I contrasts against). *)

(** [with_periods cfg ~scale] clones [cfg] with every task graph's
    period multiplied by [scale].
    @raise Invalid_argument if [scale <= 0]. *)
val with_periods : Taskgraph.Config.t -> scale:float -> Taskgraph.Config.t

(** [min_period_scale ?tolerance ?params ?on_probe cfg] is the
    smallest factor [s] such that the configuration with all periods
    scaled by [s] is feasible, found by bisection to relative
    [tolerance] (default 1e-4).  [s ≤ 1] means the stated requirements
    hold with margin; [s > 1] means they must be relaxed by that
    factor.  [None] when even a 1000× relaxation is infeasible (a
    structural dead end such as an over-full memory).

    All probes share one internal clone of [cfg] whose periods are
    rescaled in place — [cfg] itself is never mutated.  [on_probe] is
    called with the scale of every feasibility probe (solve); the
    regression tests use it to pin the probe count so the fast path
    cannot silently regress. *)
val min_period_scale :
  ?tolerance:float -> ?params:Conic.Socp.params -> ?on_probe:(float -> unit) ->
  Taskgraph.Config.t ->
  float option

(** [throughput_curve ?params ?pool cfg ~caps] sweeps a shared buffer
    capacity cap and reports, per cap, the minimal feasible period of
    the {e first} task graph (single-graph configurations being the
    common case).  Points whose cap admits no feasible period are
    omitted.  Every cap is an independent bisection over independent
    solves; with [?pool] they are evaluated concurrently, with output
    bit-identical to the sequential sweep (see {!Parallel.Pool.map}). *)
val throughput_curve :
  ?params:Conic.Socp.params ->
  ?pool:Parallel.Pool.t ->
  Taskgraph.Config.t ->
  caps:int list ->
  (int * float) list
