(** Algorithm 1 of the paper: the second-order cone program that
    simultaneously computes budgets and buffer sizes.

    Variables, per the paper's formulation:
    - a start time [s(v)] for every actor of the SRDF model of every
      task graph (free reals);
    - a continuous budget [β′(w) ≥ 0] and its reciprocal surrogate
      [λ(w) ≥ 0] for every task;
    - a continuous count of initially-empty containers
      [δ′(b) ≥ 0] for every buffer (the space queue's tokens; the total
      continuous capacity is [ι(b) + δ′(b)]).

    Constraints (numbering follows the paper):
    - (6) for every queue in [E1]: [s(v2) ≥ s(v1) + ̺ − β′];
    - (7) for every queue in [E2], with the graph's period [µ]:
      self-loops give [̺·χ·λ ≤ µ], data queues
      [s(b1) ≥ s(a2) + ̺·χ·λ(a) − ι·µ], space queues
      [s(a1) ≥ s(b2) + ̺·χ·λ(b) − δ′·µ];
    - (8) [λ(w)·β′(w) ≥ 1] as a second-order cone
      ([‖(λ−β′, 2)‖ ≤ λ+β′]);
    - (9) per processor: [Σ (β′(w) + g) ≤ ̺(p) − o(p)], pre-reserving
      one granule per task for the rounding [β = g·⌈β′/g⌉];
    - (10) per memory: [Σ (ι + δ′ + 1)·ζ ≤ ς(m)], pre-reserving one
      container per buffer for the rounding [⌈δ′⌉];
    - capacity bounds [ι + δ′ ≤ cap] for buffers carrying a
      [max_capacity].

    Objective (5): minimise [Σ a(w)·β′(w) + Σ b(b)·ζ(b)·δ′(b)]. *)

type t = {
  model : Conic.Model.model;
  budget_var : Taskgraph.Config.task -> Conic.Model.var;  (** β′(w) *)
  lambda_var : Taskgraph.Config.task -> Conic.Model.var;  (** λ(w) *)
  space_var : Taskgraph.Config.buffer -> Conic.Model.var;
      (** δ′(b): continuous initially-empty containers *)
  start_var :
    Taskgraph.Config.task -> [ `A1 | `A2 ] -> Conic.Model.var;
      (** s(v1), s(v2) of the task's dataflow component *)
}

(** [build cfg] assembles the cone program for all task graphs of the
    configuration (they couple through shared processors and
    memories). *)
val build : Taskgraph.Config.t -> t

(** Continuous solution extracted from a solved model. *)
type continuous = {
  budget : Taskgraph.Config.task -> float;
  lambda : Taskgraph.Config.task -> float;
  space : Taskgraph.Config.buffer -> float;
  capacity : Taskgraph.Config.buffer -> float;
      (** [ι(b) + space b]: total continuous containers *)
  objective : float;
}

(** [extract cfg t result] reads the variable values back. *)
val extract : Taskgraph.Config.t -> t -> Conic.Model.result -> continuous
