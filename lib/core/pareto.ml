module Config = Taskgraph.Config
module Recovery = Robust.Recovery
module Fault = Robust.Fault

type point = {
  weight_ratio : float;
  budget_sum : float;
  buffer_containers : int;
  rounded_objective : float;
  certified : bool;
}

type sweep = { points : point list; skipped : (float * string) list }

let pp_point ppf p =
  Format.fprintf ppf "ratio %.3g: budgets %.4f, %d containers" p.weight_ratio
    p.budget_sum p.buffer_containers

(* Journal payload of one frontier candidate (docs/formats.md).  The
   frontier pruning happens after the sweep, so the journal records the
   raw per-ratio outcome.  Timed-out candidates are not journaled: a
   resume retries them. *)
let encode_outcome = function
  | `Point p ->
    Some
      (String.concat " "
         [
           "point";
           Durability.float_to_token p.weight_ratio;
           Durability.float_to_token p.budget_sum;
           string_of_int p.buffer_containers;
           Durability.float_to_token p.rounded_objective;
           (if p.certified then "cert" else "uncert");
         ])
  | `Infeasible -> Some "infeasible"
  | `Skipped (ratio, reason) ->
    if String.equal reason "timed out" then None
    else
      Some
        (Printf.sprintf "skip %s %S" (Durability.float_to_token ratio) reason)

let decode_outcome payload =
  if String.equal payload "infeasible" then Some `Infeasible
  else
    match
      let ib = Scanf.Scanning.from_string payload in
      match Durability.scan_token ib with
      | "point" ->
        let weight_ratio = Durability.scan_float ib in
        let budget_sum = Durability.scan_float ib in
        let buffer_containers = Durability.scan_int ib in
        let rounded_objective = Durability.scan_float ib in
        let certified =
          match Durability.scan_token ib with
          | "cert" -> true
          | "uncert" -> false
          | _ -> raise (Scanf.Scan_failure "malformed certification token")
        in
        Some
          (`Point
            {
              weight_ratio;
              budget_sum;
              buffer_containers;
              rounded_objective;
              certified;
            })
      | "skip" ->
        let ratio = Durability.scan_float ib in
        Some (`Skipped (ratio, Durability.scan_quoted ib))
      | _ -> None
    with
    | v -> v
    | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> None

let frontier ?(steps = 9) ?params ?policy ?pool ?deadline ?candidate_deadline
    ?journal ?cancel ?obs ?on_progress ?(warm_start = true) cfg =
  if steps < 1 then invalid_arg "Pareto.frontier: steps must be >= 1";
  let policy =
    match policy with Some p -> p | None -> Recovery.default_policy ()
  in
  let deadline = Option.value deadline ~default:Durable.Deadline.none in
  let tasks = Config.all_tasks cfg and buffers = Config.all_buffers cfg in
  (* Geometric sweep of the budget-to-buffer weight ratio; every ratio
     reweights its own clone so the candidate solves are independent
     (and [cfg] keeps its weights without any restore dance). *)
  let lo = 1e-3 and hi = 1e3 in
  let ratios =
    if steps = 1 then [ 1.0 ]
    else
      List.init steps (fun i ->
          lo *. ((hi /. lo) ** (float_of_int i /. float_of_int (steps - 1))))
  in
  (* Per-candidate outcome: a solver failure (or a crash) is reported
     in [skipped] while the rest of the frontier survives; a plain
     infeasibility verdict is silently dropped as before (an infeasible
     instance has no frontier points at any ratio). *)
  let ratios = Array.of_list ratios in
  (* One cold anchor (at the first ratio's weights) seeds every
     candidate — order-independent, hence pool- and resume-safe; see
     [Durability.warm_anchor]. *)
  let warm =
    if (not warm_start) || Array.length ratios = 0 then None
    else begin
      let anchor = Config.copy cfg in
      List.iter (fun w -> Config.set_task_weight anchor w ratios.(0)) tasks;
      List.iter (fun b -> Config.set_buffer_weight anchor b 1.0) buffers;
      Durability.warm_anchor
        ?params:(Durability.params_with_deadline params ~deadline ~candidate_deadline)
        anchor
    end
  in
  let solve_ratio index =
    let ratio = ratios.(index) in
    let candidate_policy =
      { policy with Recovery.fault = Fault.for_candidate policy.Recovery.fault ~index }
    in
    let params =
      Durability.params_with_warm
        (Durability.params_with_obs
           (Durability.params_with_deadline params ~deadline ~candidate_deadline)
           obs)
        warm
    in
    let outcome =
      match
        let candidate = Config.copy cfg in
        List.iter (fun w -> Config.set_task_weight candidate w ratio) tasks;
        List.iter (fun b -> Config.set_buffer_weight candidate b 1.0) buffers;
        Mapping.solve ?params ~policy:candidate_policy candidate
      with
      | Ok r ->
        let budget_sum =
          List.fold_left
            (fun acc w -> acc +. r.Mapping.continuous.Socp_builder.budget w)
            0.0 tasks
        in
        let buffer_containers =
          List.fold_left
            (fun acc b -> acc + r.Mapping.mapped.Config.capacity b)
            0 buffers
        in
        `Point
          {
            weight_ratio = ratio;
            budget_sum;
            buffer_containers;
            rounded_objective = r.Mapping.rounded_objective;
            certified = Certify.certified r.Mapping.certificate;
          }
      | Error (Mapping.Infeasible _) -> `Infeasible
      | Error ((Mapping.Solver_failure _ | Mapping.Timed_out _) as e) ->
        `Skipped (ratio, Mapping.short_reason e)
      | exception _ -> `Skipped (ratio, "exception")
    in
    (match obs with
    | None -> ()
    | Some o ->
      let verdict =
        match outcome with
        | `Point _ -> "ok"
        | `Infeasible -> "infeasible"
        | `Skipped _ -> "skipped"
      in
      Obs.Ctx.emit o (Obs.Trace.Candidate { index; verdict }));
    outcome
  in
  let results, progress =
    Durable.Sweep.run ?pool ?journal ?obs ~deadline ?cancel
      ~encode:encode_outcome
      ~decode:(fun _ payload -> decode_outcome payload)
      ~n:(Array.length ratios) solve_ratio
  in
  (match on_progress with None -> () | Some f -> f progress);
  let outcomes = List.filter_map Fun.id (Array.to_list results) in
  let raw =
    List.filter_map (function `Point p -> Some p | _ -> None) outcomes
  in
  let skipped =
    List.filter_map (function `Skipped s -> Some s | _ -> None) outcomes
  in
  (* Keep the non-dominated points (smaller budget AND smaller
     buffers is better), sorted by buffer use. *)
  let sorted =
    List.sort
      (fun p1 p2 ->
        match compare p1.buffer_containers p2.buffer_containers with
        | 0 -> compare p1.budget_sum p2.budget_sum
        | c -> c)
      raw
  in
  let rec prune best_budget = function
    | [] -> []
    | p :: rest ->
      if p.budget_sum < best_budget -. 1e-6 then p :: prune p.budget_sum rest
      else prune best_budget rest
  in
  { points = prune infinity sorted; skipped }
