module Config = Taskgraph.Config
module Lp = Simplex.Lp
module Model = Conic.Model
module Socp = Conic.Socp

type budget_policy = Min_budget | Fair_share
type buffer_policy = At_bound | Uniform of int

type result = {
  mapped : Config.mapped;
  objective : float;
  rounds : int;
  certificate : Certify.t;
}

type error = Infeasible of string | Solver_failure of string

let pp_error ppf = function
  | Infeasible msg -> Format.fprintf ppf "infeasible: %s" msg
  | Solver_failure msg -> Format.fprintf ppf "solver failure: %s" msg

let ( let* ) = Result.bind

(* Objective (5) evaluated on a rounded mapping: weighted budgets plus
   weighted container counts beyond the initially-filled ones (matching
   what the joint flow reports). *)
let objective_of cfg (mapped : Config.mapped) =
  List.fold_left
    (fun acc w -> acc +. (Config.task_weight cfg w *. mapped.Config.budget w))
    0.0 (Config.all_tasks cfg)
  +. List.fold_left
       (fun acc b ->
         acc
         +. Config.buffer_weight cfg b
            *. float_of_int
                 (Config.container_size cfg b
                 * (mapped.Config.capacity b - Config.initial_tokens cfg b)))
       0.0 (Config.all_buffers cfg)

(* ------------------------------------------------------------------ *)
(* Phase 1 budget policies                                             *)
(* ------------------------------------------------------------------ *)

let min_budget cfg w =
  let p = Config.task_proc cfg w in
  let mu = Config.period cfg (Config.task_graph cfg w) in
  let need = Config.replenishment cfg p *. Config.wcet cfg w /. mu in
  Rounding.round_budget ~granularity:(Config.granularity cfg) need

let fair_share cfg w =
  let p = Config.task_proc cfg w in
  let n = List.length (Config.tasks_on cfg p) in
  let share =
    (Config.replenishment cfg p -. Config.overhead cfg p) /. float_of_int n
  in
  (* Round the share DOWN to the granularity so the shares still fit. *)
  let granularity = Config.granularity cfg in
  let share = granularity *. Float.max 1.0 (floor (share /. granularity)) in
  share

let budgets_of_policy cfg = function
  | Min_budget -> min_budget cfg
  | Fair_share -> fair_share cfg

let check_budgets cfg budget =
  let problems =
    List.concat_map
      (fun p ->
        let used =
          List.fold_left
            (fun acc w -> acc +. budget w)
            (Config.overhead cfg p)
            (Config.tasks_on cfg p)
        in
        if used > Config.replenishment cfg p +. 1e-9 then
          [
            Printf.sprintf "processor %s oversubscribed by the budget policy"
              (Config.proc_name cfg p);
          ]
        else [])
      (Config.processors cfg)
    @ List.concat_map
        (fun w ->
          let p = Config.task_proc cfg w in
          let mu = Config.period cfg (Config.task_graph cfg w) in
          if Config.replenishment cfg p *. Config.wcet cfg w /. budget w > mu
          then
            [
              Printf.sprintf
                "task %s: policy budget %g cannot sustain the period"
                (Config.task_name cfg w) (budget w);
            ]
          else [])
        (Config.all_tasks cfg)
  in
  if problems = [] then Ok () else Error (Infeasible (String.concat "; " problems))

(* ------------------------------------------------------------------ *)
(* Phase 2: buffer sizing at fixed budgets — a pure LP                 *)
(* ------------------------------------------------------------------ *)

(* With β fixed, the actor durations ρ(v1) = ̺ − β and ρ(v2) = ̺·χ/β are
   constants, so Constraints (6), (7) and (10) over the start times and
   the continuous space tokens δ′ form a linear program.  Solved with
   the exact two-phase simplex so infeasibility verdicts are crisp. *)
let buffer_lp cfg ~budget =
  let p = Lp.create () in
  let s1 = Hashtbl.create 16 and s2 = Hashtbl.create 16 in
  let dvar = Hashtbl.create 16 in
  List.iter
    (fun w ->
      let n = Config.task_name cfg w in
      Hashtbl.replace s1 (Config.task_id w)
        (Lp.add_variable p ~name:("s." ^ n ^ ".1") ~lb:None ());
      Hashtbl.replace s2 (Config.task_id w)
        (Lp.add_variable p ~name:("s." ^ n ^ ".2") ~lb:None ()))
    (Config.all_tasks cfg);
  List.iter
    (fun b ->
      let iota = Config.initial_tokens cfg b in
      let ub =
        match Config.max_capacity cfg b with
        | None -> None
        | Some cap -> Some (float_of_int (cap - iota))
      in
      Hashtbl.replace dvar (Config.buffer_id b)
        (Lp.add_variable p
           ~name:("delta'." ^ Config.buffer_name cfg b)
           ~lb:(Some 0.0) ~ub ()))
    (Config.all_buffers cfg);
  let sv1 w = Hashtbl.find s1 (Config.task_id w)
  and sv2 w = Hashtbl.find s2 (Config.task_id w)
  and dv b = Hashtbl.find dvar (Config.buffer_id b) in
  let rho1 w =
    let proc = Config.task_proc cfg w in
    Config.replenishment cfg proc -. budget w
  in
  let rho2 w =
    let proc = Config.task_proc cfg w in
    Config.replenishment cfg proc *. Config.wcet cfg w /. budget w
  in
  List.iter
    (fun w ->
      let mu = Config.period cfg (Config.task_graph cfg w) in
      (* (6): s(v2) − s(v1) ≥ ρ(v1). *)
      ignore (Lp.add_constraint p [ (1.0, sv2 w); (-1.0, sv1 w) ] Lp.Ge (rho1 w));
      (* Self-loop: ρ(v2) ≤ µ — no variables, fail fast. *)
      if rho2 w > mu +. 1e-9 then
        ignore (Lp.add_constraint p [] Lp.Ge 1.0 (* constant infeasible row *)))
    (Config.all_tasks cfg);
  List.iter
    (fun b ->
      let wa = Config.buffer_src cfg b and wb = Config.buffer_dst cfg b in
      let mu = Config.period cfg (Config.task_graph cfg wa) in
      let iota = float_of_int (Config.initial_tokens cfg b) in
      (* Data queue: s(b1) − s(a2) ≥ ρ(a2) − ι·µ. *)
      ignore (Lp.add_constraint p [ (1.0, sv1 wb); (-1.0, sv2 wa) ] Lp.Ge (rho2 wa -. (iota *. mu)));
      (* Space queue: s(a1) − s(b2) + µ·δ′ ≥ ρ(b2). *)
      ignore (Lp.add_constraint p [ (1.0, sv1 wa); (-1.0, sv2 wb); (mu, dv b) ] Lp.Ge (rho2 wb)))
    (Config.all_buffers cfg);
  List.iter
    (fun mem ->
      let bufs = Config.buffers_in cfg mem in
      if bufs <> [] then begin
        let terms =
          List.map
            (fun b -> (float_of_int (Config.container_size cfg b), dv b))
            bufs
        in
        let consumed =
          List.fold_left
            (fun acc b ->
              acc
              + (Config.container_size cfg b
                * (Config.initial_tokens cfg b + 1)))
            0 bufs
        in
        ignore (Lp.add_constraint p terms Lp.Le (float_of_int (Config.memory_capacity cfg mem - consumed)))
      end)
    (Config.memories cfg);
  Lp.set_objective p
    (List.map
       (fun b ->
         ( Config.buffer_weight cfg b
           *. float_of_int (Config.container_size cfg b),
           dv b ))
       (Config.all_buffers cfg));
  match Lp.solve p with
  | Lp.Infeasible ->
    Error
      (Infeasible
         "buffer-sizing LP infeasible for the phase-1 budgets (a joint \
          assignment may still exist)")
  | Lp.Unbounded -> Error (Solver_failure "buffer-sizing LP unbounded")
  | Lp.Optimal { value; _ } ->
    Ok
      (fun b ->
        Rounding.round_capacity
          ~initial_tokens:(Config.initial_tokens cfg b)
          (value (dv b)))

let finish ?obs cfg ~budget ~capacity ~rounds =
  let mapped = { Config.budget; Config.capacity } in
  match Dataflow_model.verify cfg mapped with
  | exception Rounding.Non_finite { what; value } ->
    Error
      (Solver_failure
         (Printf.sprintf
            "non-finite %s %h emitted by the solver; rounding refused" what
            value))
  | [] ->
    let certificate = Certify.check cfg mapped in
    (match obs with
    | None -> ()
    | Some o ->
      Obs.Ctx.emit o
        (Obs.Trace.Certificate
           {
             verdict =
               (if Certify.certified certificate then "certified"
                else "refuted");
           }));
    Ok { mapped; objective = objective_of cfg mapped; rounds; certificate }
  | problems ->
    Error (Solver_failure ("two-phase result failed verification: "
                           ^ String.concat "; "
                               (List.map Violation.to_string problems)))

let budget_first ?(policy = Min_budget) ?obs cfg =
  let budget = budgets_of_policy cfg policy in
  let* () = check_budgets cfg budget in
  let* capacity = buffer_lp cfg ~budget in
  finish ?obs cfg ~budget ~capacity ~rounds:2

(* ------------------------------------------------------------------ *)
(* Phase 2': budgets at fixed capacities — the cone program with δ′    *)
(* pinned                                                              *)
(* ------------------------------------------------------------------ *)

let budgets_at_fixed_capacity ?params cfg ~capacity =
  let builder = Socp_builder.build cfg in
  let m = builder.Socp_builder.model in
  List.iter
    (fun b ->
      let fixed =
        float_of_int (capacity b - Config.initial_tokens cfg b)
      in
      Model.fix m (builder.Socp_builder.space_var b) fixed)
    (Config.all_buffers cfg);
  let result = Model.solve ?params m in
  match result.Model.status with
  | Socp.Primal_infeasible ->
    Error
      (Infeasible
         "budget phase infeasible for the phase-1 buffer capacities (a \
          joint assignment may still exist)")
  | Socp.Dual_infeasible | Socp.Iteration_limit | Socp.Stalled
  | Socp.Timed_out ->
    Error
      (Solver_failure
         (Format.asprintf "cone solve stopped with status %a" Socp.pp_status
            result.Model.status))
  | Socp.Optimal ->
    let continuous = Socp_builder.extract cfg builder result in
    (* Round eagerly: a NaN budget surfaces here as a typed error
       instead of escaping from some later closure call. *)
    (match
       List.map
         (fun w ->
           ( Config.task_id w,
             Rounding.round_budget
               ~granularity:(Config.granularity cfg)
               (continuous.Socp_builder.budget w) ))
         (Config.all_tasks cfg)
     with
    | exception Rounding.Non_finite { what; value } ->
      Error
        (Solver_failure
           (Printf.sprintf
              "non-finite %s %h emitted by the solver; rounding refused" what
              value))
    | budgets -> Ok (fun w -> List.assoc (Config.task_id w) budgets))

let buffer_first ?(policy = At_bound) ?(fallback = 2) ?params cfg =
  if fallback < 1 then invalid_arg "Two_phase.buffer_first: fallback < 1";
  let capacity b =
    match policy with
    | Uniform n -> Int.max 1 (Config.initial_tokens cfg b + n)
    | At_bound -> begin
      match Config.max_capacity cfg b with
      | Some cap -> cap
      | None -> Int.max 1 (Config.initial_tokens cfg b + fallback)
    end
  in
  let* budget = budgets_at_fixed_capacity ?params cfg ~capacity in
  finish cfg ~budget ~capacity ~rounds:2

(* ------------------------------------------------------------------ *)
(* Alternating coordinate descent                                      *)
(* ------------------------------------------------------------------ *)

let alternating ?(max_rounds = 10) ?params cfg =
  let budget0 = budgets_of_policy cfg Fair_share in
  let* () = check_budgets cfg budget0 in
  let rec loop budget best rounds =
    if rounds >= max_rounds then Ok best
    else begin
      match buffer_lp cfg ~budget with
      | Error e -> if rounds = 0 then Error e else Ok best
      | Ok capacity -> begin
        match budgets_at_fixed_capacity ?params cfg ~capacity with
        | Error e -> if rounds = 0 then Error e else Ok best
        | Ok budget' ->
          let mapped = { Config.budget = budget'; Config.capacity = capacity } in
          let obj = objective_of cfg mapped in
          let improved =
            match best with
            | None -> true
            | Some (_, prev_obj, _) -> obj < prev_obj -. 1e-6
          in
          let best' =
            if improved then Some (mapped, obj, (2 * rounds) + 2) else best
          in
          if improved then loop budget' best' (rounds + 1)
          else Ok best'
      end
    end
  in
  let* best = loop budget0 None 0 in
  match best with
  | None -> Error (Infeasible "alternating flow found no feasible point")
  | Some (mapped, objective, rounds) -> begin
    match Dataflow_model.verify cfg mapped with
    | [] ->
      Ok { mapped; objective; rounds; certificate = Certify.check cfg mapped }
    | problems ->
      Error
        (Solver_failure
           ("alternating result failed verification: "
           ^ String.concat "; " (List.map Violation.to_string problems)))
  end

let buffer_sizing_lp = buffer_lp
