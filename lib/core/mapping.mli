(** The joint budget and buffer-size computation flow — the paper's
    headline contribution.

    [solve] builds Algorithm 1 for the whole configuration, runs the
    interior-point solver under the {!Robust.Recovery} ladder, applies
    the conservative roundings [β = g·⌈β′/g⌉] and [γ = ι + ⌈δ′⌉], and
    re-verifies the rounded mapping against the dataflow feasibility
    test (Constraint (1) via Bellman–Ford), the processor budget
    capacities and the memory capacities, plus a TDM-simulation
    cross-check and an exact rational certificate ({!Certify}).  By
    the monotonicity argument of Section IV the verification must
    succeed whenever the solver returned an optimal continuous point;
    it is nevertheless checked and reported.

    Resilience (docs/robustness.md): when the cone solve stalls, the
    recovery ladder retries with relaxed tolerances, a deeper iteration
    budget and a re-equilibrated problem, and finally restates the
    problem on the exact-simplex buffer LP of {!Two_phase}.  A
    recovered (degraded) solve must pass certification — Bellman–Ford
    and the simulation hard check — or [solve] returns an error rather
    than silently handing back an unverified mapping. *)

type stats = {
  variables : int;
  rows : int;
  iterations : int;  (** interior-point iterations of the final attempt *)
  attempts : int;  (** recovery-ladder attempts, 1 in normal operation *)
  solve_time_s : float;  (** wall-clock time of the whole solve ladder *)
  kkt_fallbacks : int;
      (** iterations of the final attempt where the sparse KKT
          factorisation fell back to the dense oracle (0 on the dense
          backend) *)
}

type result = {
  mapped : Taskgraph.Config.mapped;
  continuous : Socp_builder.continuous;
      (** the pre-rounding optimum, for reporting the trade-off curves
          (on the LP-fallback path: the fallback's own values) *)
  objective : float;  (** continuous optimum of Objective (5) *)
  rounded_objective : float;
      (** Objective (5) evaluated on the rounded β, γ *)
  verification : Violation.t list;
      (** violations found when re-checking the rounded mapping with
          the float dataflow test; empty in normal operation *)
  certificate : Certify.t;
      (** exact rational certificate of the rounded mapping:
          [Certified] with the start-time witness, or [Refuted] with
          the violated constraint / positive-cycle witness.  Always
          computed; a {e recovered} solve that fails it is turned into
          an error instead of being returned *)
  sim_check : string list;
      (** TDM-simulation cross-check notes (measured period beyond the
          required period by more than a startup margin, or a failed
          run); empty in normal operation *)
  recovery : Robust.Recovery.trace;
      (** one attempt per solver run; more than one means the solve was
          recovered *)
  stats : stats;
}

type error =
  | Infeasible of string
      (** the cone program is primal infeasible: no budget/buffer
          assignment meets the throughput requirement under the given
          processor, memory and capacity bounds *)
  | Solver_failure of string
      (** every rung of the recovery ladder returned an unusable status
          (or a recovered mapping failed certification) *)
  | Timed_out of string
      (** the solve's cooperative deadline
          ({!Conic.Socp.params.deadline}) expired mid-solve.  Unlike a
          [Solver_failure] this is not a verdict about the instance at
          all: neither the recovery ladder nor the LP fallback is tried
          (the deadline is already blown), and the durable sweep layer
          deliberately does {e not} journal it, so a resume retries the
          candidate. *)

(** [solve ?params ?policy ?obs cfg] runs the full flow.  [params]
    tunes the interior-point solver; [policy] (default
    {!Robust.Recovery.default_policy}, which honours [BUDGETBUF_FAULT])
    controls the recovery ladder and fault injection.  [obs] (or a
    context already installed in [params]) receives the solve's trace
    events — solver iterations, recovery rungs, the certificate
    verdict — and the ["socp"] / ["finish"] phase spans; observation
    never changes the result (the trace-transparency property of
    test_obs.ml). *)
val solve :
  ?params:Conic.Socp.params ->
  ?policy:Robust.Recovery.policy ->
  ?obs:Obs.Ctx.t ->
  Taskgraph.Config.t ->
  (result, error) Stdlib.result

(** [kkt_auto cfg] picks the KKT backend for an instance whose caller
    did not force one: [`Sparse] when the instance counts at least
    {!sparse_auto_threshold} tasks plus buffers (where the sparse
    Cholesky is measurably ahead, see BENCH_sparse.json), [`Dense]
    below it — the proven oracle path, bit-identical to the historical
    behaviour on small instances. *)
val kkt_auto : Taskgraph.Config.t -> [ `Dense | `Sparse ]

(** Size threshold (tasks + buffers) at which {!kkt_auto} switches to
    the sparse backend. *)
val sparse_auto_threshold : int

(** [round_budget ~granularity beta'] is [g·⌈β′/g⌉] with a small
    tolerance so values within 1e-9 of a grid point do not round up an
    extra granule.  (= {!Rounding.round_budget}.) *)
val round_budget : granularity:float -> float -> float

(** [round_capacity ~initial_tokens delta'] is
    [max 1 (ι + ⌈δ′⌉)] with the same tolerance.
    (= {!Rounding.round_capacity}.) *)
val round_capacity : initial_tokens:int -> float -> int

(** [short_reason e] is a short stable label for sweep skip summaries:
    ["infeasible"], ["timed out"], ["stalled"], ["iteration limit"],
    ["unbounded"], ["exception"] or ["failure"]. *)
val short_reason : error -> string

(** [pp_error ppf e] prints an error. *)
val pp_error : Format.formatter -> error -> unit
