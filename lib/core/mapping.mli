(** The joint budget and buffer-size computation flow — the paper's
    headline contribution.

    [solve] builds Algorithm 1 for the whole configuration, runs the
    interior-point solver, applies the conservative roundings
    [β = g·⌈β′/g⌉] and [γ = ι + ⌈δ′⌉], and re-verifies the rounded
    mapping against the exact dataflow feasibility test (Constraint (1)
    via Bellman–Ford), the processor budget capacities and the memory
    capacities.  By the monotonicity argument of Section IV the
    verification must succeed whenever the solver returned an optimal
    continuous point; it is nevertheless checked and reported. *)

type stats = {
  variables : int;
  rows : int;
  iterations : int;
  solve_time_s : float;  (** wall-clock time of the cone solve *)
}

type result = {
  mapped : Taskgraph.Config.mapped;
  continuous : Socp_builder.continuous;
      (** the pre-rounding optimum, for reporting the trade-off curves *)
  objective : float;  (** continuous optimum of Objective (5) *)
  rounded_objective : float;
      (** Objective (5) evaluated on the rounded β, γ *)
  verification : string list;
      (** violations found when re-checking the rounded mapping; empty
          in normal operation *)
  stats : stats;
}

type error =
  | Infeasible of string
      (** the cone program is primal infeasible: no budget/buffer
          assignment meets the throughput requirement under the given
          processor, memory and capacity bounds *)
  | Solver_failure of string
      (** the interior-point method returned an unusable status *)

(** [solve ?params cfg] runs the full flow.  [params] tunes the
    interior-point solver. *)
val solve :
  ?params:Conic.Socp.params -> Taskgraph.Config.t -> (result, error) Stdlib.result

(** [round_budget ~granularity beta'] is [g·⌈β′/g⌉] with a small
    tolerance so values within 1e-9 of a grid point do not round up an
    extra granule. *)
val round_budget : granularity:float -> float -> float

(** [round_capacity ~initial_tokens delta'] is
    [max 1 (ι + ⌈δ′⌉)] with the same tolerance. *)
val round_capacity : initial_tokens:int -> float -> int

(** [pp_error ppf e] prints an error. *)
val pp_error : Format.formatter -> error -> unit
