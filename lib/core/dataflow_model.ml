module Config = Taskgraph.Config
module Srdf = Dataflow.Srdf
module Analysis = Dataflow.Analysis

type t = {
  srdf : Srdf.t;
  actor1 : Config.task -> Srdf.actor;
  actor2 : Config.task -> Srdf.actor;
  self_edge : Config.task -> Srdf.edge;
  transition_edge : Config.task -> Srdf.edge;
  data_edge : Config.buffer -> Srdf.edge;
  space_edge : Config.buffer -> Srdf.edge;
}

let build cfg g ~budget ~capacity =
  let srdf = Srdf.create () in
  let a1 = Hashtbl.create 16
  and a2 = Hashtbl.create 16
  and selfe = Hashtbl.create 16
  and trans = Hashtbl.create 16
  and datae = Hashtbl.create 16
  and spacee = Hashtbl.create 16 in
  List.iter
    (fun w ->
      let p = Config.task_proc cfg w in
      let repl = Config.replenishment cfg p in
      let beta = budget w in
      if beta <= 0.0 || beta > repl then
        invalid_arg
          (Printf.sprintf
             "Dataflow_model.build: budget %g of task %s outside (0, %g]" beta
             (Config.task_name cfg w) repl);
      let name = Config.task_name cfg w in
      let v1 =
        Srdf.add_actor srdf ~name:(name ^ ".1") ~duration:(repl -. beta)
      in
      let v2 =
        Srdf.add_actor srdf ~name:(name ^ ".2")
          ~duration:(repl *. Config.wcet cfg w /. beta)
      in
      Hashtbl.replace a1 (Config.task_id w) v1;
      Hashtbl.replace a2 (Config.task_id w) v2;
      Hashtbl.replace trans (Config.task_id w)
        (Srdf.add_edge srdf ~src:v1 ~dst:v2 ~tokens:0);
      Hashtbl.replace selfe (Config.task_id w)
        (Srdf.add_edge srdf ~src:v2 ~dst:v2 ~tokens:1))
    (Config.tasks cfg g);
  List.iter
    (fun b ->
      let src = Config.buffer_src cfg b and dst = Config.buffer_dst cfg b in
      let iota = Config.initial_tokens cfg b in
      let gamma = capacity b in
      if gamma < iota then
        invalid_arg
          (Printf.sprintf
             "Dataflow_model.build: capacity %d of buffer %s below its %d \
              initially filled containers"
             gamma
             (Config.buffer_name cfg b)
             iota);
      let src2 = Hashtbl.find a2 (Config.task_id src)
      and dst1 = Hashtbl.find a1 (Config.task_id dst)
      and dst2 = Hashtbl.find a2 (Config.task_id dst)
      and src1 = Hashtbl.find a1 (Config.task_id src) in
      Hashtbl.replace datae (Config.buffer_id b)
        (Srdf.add_edge srdf ~src:src2 ~dst:dst1 ~tokens:iota);
      Hashtbl.replace spacee (Config.buffer_id b)
        (Srdf.add_edge srdf ~src:dst2 ~dst:src1 ~tokens:(gamma - iota)))
    (Config.buffers cfg g);
  {
    srdf;
    actor1 = (fun w -> Hashtbl.find a1 (Config.task_id w));
    actor2 = (fun w -> Hashtbl.find a2 (Config.task_id w));
    self_edge = (fun w -> Hashtbl.find selfe (Config.task_id w));
    transition_edge = (fun w -> Hashtbl.find trans (Config.task_id w));
    data_edge = (fun b -> Hashtbl.find datae (Config.buffer_id b));
    space_edge = (fun b -> Hashtbl.find spacee (Config.buffer_id b));
  }

let throughput_ok cfg g (mapped : Config.mapped) =
  match
    build cfg g ~budget:mapped.Config.budget ~capacity:mapped.Config.capacity
  with
  | model ->
    Analysis.pas_exists model.srdf ~period:(Config.period cfg g)
  | exception Invalid_argument _ -> false

(* End-to-end latency of the earliest PAS, for graphs with a unique
   source/sink pair; [None] when no PAS exists (the throughput check
   reports that case separately). *)
let latency_of cfg g (mapped : Config.mapped) =
  let tasks = Config.tasks cfg g and buffers = Config.buffers cfg g in
  let has_input w = List.exists (fun b -> Config.buffer_dst cfg b = w) buffers in
  let has_output w = List.exists (fun b -> Config.buffer_src cfg b = w) buffers in
  match
    ( List.filter (fun w -> not (has_input w)) tasks,
      List.filter (fun w -> not (has_output w)) tasks )
  with
  | [ src ], [ snk ] -> begin
    match
      build cfg g ~budget:mapped.Config.budget
        ~capacity:mapped.Config.capacity
    with
    | exception Invalid_argument _ -> None
    | model -> begin
      let srdf = model.srdf in
      match Analysis.pas_start_times srdf ~period:(Config.period cfg g) with
      | None -> None
      | Some s ->
        let v_src = model.actor1 src and v_dst = model.actor2 snk in
        Some
          (s.(Srdf.actor_id v_dst) +. Srdf.duration srdf v_dst
          -. s.(Srdf.actor_id v_src))
    end
  end
  | _ -> None

let verify cfg (mapped : Config.mapped) =
  let problems = ref [] in
  let add v = problems := v :: !problems in
  List.iter
    (fun g ->
      if not (throughput_ok cfg g mapped) then
        add
          (Violation.Throughput
             { graph = Config.graph_name cfg g; period = Config.period cfg g }))
    (Config.graphs cfg);
  List.iter
    (fun p ->
      let used =
        List.fold_left
          (fun acc w -> acc +. mapped.Config.budget w)
          (Config.overhead cfg p)
          (Config.tasks_on cfg p)
      in
      if used > Config.replenishment cfg p +. 1e-9 then
        add
          (Violation.Processor_capacity
             {
               proc = Config.proc_name cfg p;
               used;
               capacity = Config.replenishment cfg p;
             }))
    (Config.processors cfg);
  List.iter
    (fun m ->
      let used =
        List.fold_left
          (fun acc b ->
            acc + (mapped.Config.capacity b * Config.container_size cfg b))
          0 (Config.buffers_in cfg m)
      in
      if used > Config.memory_capacity cfg m then
        add
          (Violation.Memory_capacity
             {
               memory = Config.memory_name cfg m;
               used;
               capacity = Config.memory_capacity cfg m;
             }))
    (Config.memories cfg);
  List.iter
    (fun g ->
      match Config.latency_bound cfg g with
      | None -> ()
      | Some bound -> begin
        match latency_of cfg g mapped with
        | None -> () (* throughput check already reported the failure *)
        | Some l ->
          if l > bound +. 1e-6 then
            add
              (Violation.Latency
                 { graph = Config.graph_name cfg g; latency = l; bound })
      end)
    (Config.graphs cfg);
  List.iter
    (fun b ->
      match Config.max_capacity cfg b with
      | Some cap when mapped.Config.capacity b > cap ->
        add
          (Violation.Buffer_bound
             {
               buffer = Config.buffer_name cfg b;
               capacity = mapped.Config.capacity b;
               bound = cap;
             })
      | Some _ | None -> ())
    (Config.all_buffers cfg);
  List.rev !problems

let min_feasible_period cfg g (mapped : Config.mapped) =
  match
    build cfg g ~budget:mapped.Config.budget ~capacity:mapped.Config.capacity
  with
  | exception Invalid_argument _ -> None
  | model -> begin
    (* Howard's policy iteration: the fastest of the three MCR
       implementations (see the mcr bench ablation), cross-validated
       against the binary search and Karp in the test suite. *)
    match Dataflow.Howard.max_cycle_ratio model.srdf with
    | Analysis.Mcr r -> Some r
    | Analysis.Acyclic -> Some 0.0
    | Analysis.Deadlocked -> None
  end
