module Config = Taskgraph.Config
module Sdf = Dataflow.Sdf

type rtask = int
type rchannel = int

type task_info = {
  tname : string;
  tgraph : string;
  tproc : Config.proc;
  wcet : float;
  tweight : float;
}

type channel_info = {
  cname : string;
  cgraph : string;
  csrc : rtask;
  production : int;
  cdst : rtask;
  consumption : int;
  initial : int;
  container_size : int;
  cweight : float;
}

type t = {
  config_seed : Config.t; (* holds processors and memories *)
  mutable graph_periods : (string * float) list; (* reversed *)
  mutable task_infos : task_info list; (* reversed *)
  mutable ntasks : int;
  mutable channel_infos : channel_info list; (* reversed *)
  mutable nchannels : int;
  mutable default_memory : Config.memory option;
}

let create ~granularity () =
  {
    config_seed = Config.create ~granularity ();
    graph_periods = [];
    task_infos = [];
    ntasks = 0;
    channel_infos = [];
    nchannels = 0;
    default_memory = None;
  }

let add_processor t ~name ~replenishment ?overhead () =
  Config.add_processor t.config_seed ~name ~replenishment ?overhead ()

let add_memory t ~name ~capacity =
  let m = Config.add_memory t.config_seed ~name ~capacity in
  if t.default_memory = None then t.default_memory <- Some m;
  m

let add_graph t ~name ~period =
  if List.mem_assoc name t.graph_periods then
    invalid_arg "Multirate.add_graph: duplicate graph name";
  if period <= 0.0 then invalid_arg "Multirate.add_graph: period must be > 0";
  t.graph_periods <- (name, period) :: t.graph_periods

let task_info t w = List.nth t.task_infos (t.ntasks - 1 - w)

let add_task t ~graph ~name ~proc ~wcet ?(weight = 1.0) () =
  if not (List.mem_assoc graph t.graph_periods) then
    invalid_arg "Multirate.add_task: unknown graph";
  if wcet <= 0.0 then invalid_arg "Multirate.add_task: wcet must be > 0";
  if List.exists (fun i -> i.tname = name) t.task_infos then
    invalid_arg "Multirate.add_task: duplicate task name";
  let w = t.ntasks in
  t.task_infos <-
    { tname = name; tgraph = graph; tproc = proc; wcet; tweight = weight }
    :: t.task_infos;
  t.ntasks <- w + 1;
  w

let add_channel t ~name ~src ~production ~dst ~consumption
    ?(initial_tokens = 0) ?(container_size = 1) ?(weight = 1.0) () =
  if production <= 0 || consumption <= 0 then
    invalid_arg "Multirate.add_channel: rates must be > 0";
  if initial_tokens < 0 then
    invalid_arg "Multirate.add_channel: initial tokens must be >= 0";
  let si = task_info t src and di = task_info t dst in
  if si.tgraph <> di.tgraph then
    invalid_arg "Multirate.add_channel: tasks of different graphs";
  if List.exists (fun i -> i.cname = name) t.channel_infos then
    invalid_arg "Multirate.add_channel: duplicate channel name";
  let c = t.nchannels in
  t.channel_infos <-
    {
      cname = name;
      cgraph = si.tgraph;
      csrc = src;
      production;
      cdst = dst;
      consumption;
      initial = initial_tokens;
      container_size;
      cweight = weight;
    }
    :: t.channel_infos;
  t.nchannels <- c + 1;
  c

type provenance = {
  config : Config.t;
  copies : rtask -> Config.task list;
  fifos : rchannel -> Config.buffer list;
  task_budget : Config.mapped -> rtask -> float;
  channel_capacity : Config.mapped -> rchannel -> int;
}

let floor_div a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)
let ceil_div a b = -floor_div (-a) b
let emod a b = ((a mod b) + b) mod b

let compile ?(serialize = false) t =
  match t.default_memory with
  | None -> Error "Multirate.compile: at least one memory is required"
  | Some default_memory ->
    let cfg = Config.create ~granularity:(Config.granularity t.config_seed) () in
    let procs =
      List.map
        (fun p ->
          ( Config.proc_id p,
            Config.add_processor cfg ~name:(Config.proc_name t.config_seed p)
              ~replenishment:(Config.replenishment t.config_seed p)
              ~overhead:(Config.overhead t.config_seed p) () ))
        (Config.processors t.config_seed)
    in
    let mems =
      List.map
        (fun m ->
          ( Config.memory_id m,
            Config.add_memory cfg ~name:(Config.memory_name t.config_seed m)
              ~capacity:(Config.memory_capacity t.config_seed m) ))
        (Config.memories t.config_seed)
    in
    let mem_of m = List.assoc (Config.memory_id m) mems in
    let proc_of p = List.assoc (Config.proc_id p) procs in
    let task_list = List.rev t.task_infos in
    let channel_list = List.rev t.channel_infos in
    (* Repetition vectors per graph via the SDF balance equations. *)
    let rec per_graph acc = function
      | [] -> Ok (List.rev acc)
      | (gname, period) :: rest -> begin
        let sdf = Sdf.create () in
        let sdf_actor = Hashtbl.create 16 in
        List.iteri
          (fun w info ->
            if info.tgraph = gname then
              Hashtbl.replace sdf_actor w
                (Sdf.add_actor sdf ~name:info.tname ~duration:info.wcet))
          task_list;
        List.iter
          (fun ch ->
            if ch.cgraph = gname then
              ignore
                (Sdf.add_channel sdf
                   ~src:(Hashtbl.find sdf_actor ch.csrc)
                   ~production:ch.production
                   ~dst:(Hashtbl.find sdf_actor ch.cdst)
                   ~consumption:ch.consumption ~initial_tokens:ch.initial ()))
          channel_list;
        match Sdf.repetition_vector sdf with
        | Error msg -> Error (Printf.sprintf "graph %s: %s" gname msg)
        | Ok q ->
          let rep w = q (Hashtbl.find sdf_actor w) in
          per_graph ((gname, period, rep) :: acc) rest
      end
    in
    (match per_graph [] (List.rev t.graph_periods) with
    | Error _ as e -> e
    | Ok graph_data ->
      let copy_table = Hashtbl.create 16 in
      let fifo_table = Hashtbl.create 16 in
      List.iter
        (fun (gname, period, rep) ->
          let g = Config.add_graph cfg ~name:gname ~period () in
          (* Firing copies. *)
          List.iteri
            (fun w info ->
              if info.tgraph = gname then begin
                let copies =
                  List.init (rep w) (fun k ->
                      Config.add_task cfg g
                        ~name:(Printf.sprintf "%s#%d" info.tname (k + 1))
                        ~proc:(proc_of info.tproc) ~wcet:info.wcet
                        ~weight:info.tweight ())
                in
                Hashtbl.replace copy_table w copies
              end)
            task_list;
          let copy w k = List.nth (Hashtbl.find copy_table w) (k - 1) in
          (* Serialisation FIFOs: a one-token ring through the copies of
             each task enforces in-order, one-in-flight execution. *)
          List.iteri
            (fun w info ->
              if serialize && info.tgraph = gname && rep w > 1 then begin
                let q = rep w in
                for k = 1 to q do
                  let nxt = (k mod q) + 1 in
                  ignore
                    (Config.add_buffer cfg g
                       ~name:(Printf.sprintf "%s.ser%d" info.tname k)
                       ~src:(copy w k) ~dst:(copy w nxt)
                       ~memory:(mem_of default_memory)
                       ~container_size:1
                       ~initial_tokens:(if k = q then 1 else 0)
                       ~weight:0.0 ~max_capacity:1 ())
                done
              end)
            task_list;
          (* Channel dependencies, as in the SDF→HSDF expansion. *)
          List.iteri
            (fun cidx ch ->
              if ch.cgraph = gname then begin
                let qa = rep ch.csrc and qb = rep ch.cdst in
                let bests = Hashtbl.create 16 in
                for l = 1 to qb do
                  for j = 1 to ch.consumption do
                    let n_tok = (ch.consumption * (l - 1)) + j in
                    let k' = ceil_div (n_tok - ch.initial) ch.production in
                    let s = emod (k' - 1) qa + 1 in
                    let it = ((k' - s) / qa) + 1 in
                    let delta = 1 - it in
                    let key = (s, l) in
                    match Hashtbl.find_opt bests key with
                    | Some d when d <= delta -> ()
                    | Some _ | None -> Hashtbl.replace bests key delta
                  done
                done;
                let fifos =
                  Hashtbl.fold
                    (fun (s, l) delta acc ->
                      Config.add_buffer cfg g
                        ~name:(Printf.sprintf "%s#%d-%d" ch.cname s l)
                        ~src:(copy ch.csrc s) ~dst:(copy ch.cdst l)
                        ~memory:(mem_of default_memory)
                        ~container_size:ch.container_size
                        ~initial_tokens:delta ~weight:ch.cweight ()
                      :: acc)
                    bests []
                in
                Hashtbl.replace fifo_table cidx fifos
              end)
            channel_list)
        graph_data;
      let copies w =
        match Hashtbl.find_opt copy_table w with
        | Some c -> c
        | None -> invalid_arg "Multirate.copies: unknown task"
      in
      let fifos c =
        match Hashtbl.find_opt fifo_table c with
        | Some f -> f
        | None -> invalid_arg "Multirate.fifos: unknown channel"
      in
      Ok
        {
          config = cfg;
          copies;
          fifos;
          task_budget =
            (fun (mapped : Config.mapped) w ->
              List.fold_left
                (fun acc c -> acc +. mapped.Config.budget c)
                0.0 (copies w));
          channel_capacity =
            (fun (mapped : Config.mapped) c ->
              List.fold_left
                (fun acc b -> acc + mapped.Config.capacity b)
                0 (fifos c));
        })
