(** The state-of-practice baseline the paper argues against: computing
    budgets and buffer sizes in two separate phases of the mapping flow
    (Moreira et al. EMSOFT'07, Stuijk et al. DAC'07).

    Because neither phase sees the other's degrees of freedom, the
    two-phase flow either wastes resources or produces {e false
    negatives} — it reports "infeasible" although a joint assignment
    exists (Section I of the paper).  The variants here make that
    comparison measurable:

    - {!budget_first}: pick budgets by a buffer-blind policy, then
      compute minimal buffer capacities by linear programming (exact
      simplex verdicts);
    - {!buffer_first}: pick buffer capacities by a budget-blind policy,
      then compute minimal budgets with the capacities pinned;
    - {!alternating}: coordinate descent alternating the two phases
      until the objective stops improving. *)

(** Budget policy for the buffer-blind first phase. *)
type budget_policy =
  | Min_budget
      (** the smallest budget each task needs in isolation,
          [β = g·⌈̺·χ/µ / g⌉] (the self-loop bound): cheapest budgets,
          most likely to make the buffer phase infeasible *)
  | Fair_share
      (** split each processor's interval evenly over its tasks:
          generous budgets, smallest buffers, poor budget objective *)

(** Buffer policy for the budget-blind first phase. *)
type buffer_policy =
  | At_bound
      (** every buffer at its [max_capacity] (buffers without a bound
          get [fallback]) *)
  | Uniform of int  (** every buffer at [ι + n] containers *)

type result = {
  mapped : Taskgraph.Config.mapped;
  objective : float;
      (** Objective (5) on the final (rounded) mapping, comparable with
          {!Mapping.result.rounded_objective} *)
  rounds : int;  (** number of phase solves performed *)
  certificate : Certify.t;
      (** exact rational certificate of the final mapping (two-phase
          results only reach the caller after passing the float
          verification, so a [Refuted] certificate flags a genuine
          near-boundary rounding problem) *)
}

type error =
  | Infeasible of string
      (** the phase decomposition failed even though a joint solution
          may exist — the false negative the paper describes *)
  | Solver_failure of string

val pp_error : Format.formatter -> error -> unit

(** [budget_first ?policy ?obs cfg] runs phase 1 (budgets) then phase 2
    (buffer LP via simplex).  [obs] receives a {!Obs.Trace.Certificate}
    verdict event when the flow reaches certification. *)
val budget_first :
  ?policy:budget_policy ->
  ?obs:Obs.Ctx.t ->
  Taskgraph.Config.t ->
  (result, error) Stdlib.result

(** [buffer_sizing_lp cfg ~budget] is the phase-2 linear program alone:
    minimal (rounded) buffer capacities for the given fixed budgets, by
    exact two-phase simplex.  Exposed so the benches can cross-check the
    simplex and interior-point solvers on the very same LP. *)
val buffer_sizing_lp :
  Taskgraph.Config.t ->
  budget:(Taskgraph.Config.task -> float) ->
  (Taskgraph.Config.buffer -> int, error) Stdlib.result

(** [budgets_at_fixed_capacity ?params cfg ~capacity] is the dual
    phase-2: minimal (rounded) budgets for fixed buffer capacities, via
    the cone program with the δ′ variables pinned. *)
val budgets_at_fixed_capacity :
  ?params:Conic.Socp.params ->
  Taskgraph.Config.t ->
  capacity:(Taskgraph.Config.buffer -> int) ->
  (Taskgraph.Config.task -> float, error) Stdlib.result

(** [buffer_first ?policy ?fallback cfg] fixes capacities (phase 1)
    then minimises budgets with the capacities pinned in the cone
    program (phase 2).  [fallback] (default 2: double buffering) is
    used by [At_bound] for buffers without a [max_capacity]. *)
val buffer_first :
  ?policy:buffer_policy ->
  ?fallback:int ->
  ?params:Conic.Socp.params ->
  Taskgraph.Config.t ->
  (result, error) Stdlib.result

(** [alternating ?max_rounds cfg] starts from [Fair_share] budgets and
    alternates buffer-LP and budget-minimisation phases until the
    objective improves by less than 1e-6 or [max_rounds] (default 10)
    phase pairs ran.  Monotonically non-increasing in the objective but
    can settle above the joint optimum. *)
val alternating :
  ?max_rounds:int ->
  ?params:Conic.Socp.params ->
  Taskgraph.Config.t ->
  (result, error) Stdlib.result
