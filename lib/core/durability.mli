(** Glue between the sweep drivers and {!Durable}: deadline-aware
    solver parameters and the token codec conventions shared by the
    journal payload encoders of {!Dse}, {!Tradeoff} and {!Pareto}.

    Payload grammar convention (see docs/formats.md): payloads are
    single lines of whitespace-separated tokens; floats are rendered as
    C99 hex literals ([%h], bit-exact round-trip), free-form strings as
    OCaml-quoted literals ([%S], whitespace-safe). *)

(** [params_with_deadline params ~deadline ~candidate_deadline] is
    [params] with {!Conic.Socp.params.deadline} polling the earlier of
    the whole-sweep [deadline] and a fresh per-candidate budget of
    [candidate_deadline] seconds starting now.  [params] is returned
    untouched when neither limit is set.
    @raise Invalid_argument if [candidate_deadline <= 0]. *)
val params_with_deadline :
  Conic.Socp.params option ->
  deadline:Durable.Deadline.t ->
  candidate_deadline:float option ->
  Conic.Socp.params option

(** [params_with_obs params obs] installs [obs] as
    {!Conic.Socp.params.obs} so the solver and the recovery ladder
    emit into it; [params] is returned untouched when [obs] is
    [None]. *)
val params_with_obs :
  Conic.Socp.params option -> Obs.Ctx.t option -> Conic.Socp.params option

(** [params_with_warm params warm] installs [warm] as
    {!Conic.Socp.params.warm}; [params] is returned untouched when
    [warm] is [None]. *)
val params_with_warm :
  Conic.Socp.params option ->
  Conic.Socp.warm option ->
  Conic.Socp.params option

(** [warm_anchor ?params cfg] runs one cold solve of [cfg]'s SOCP and
    returns its primal/dual point as a warm-start seed, or [None] if
    the solve did not reach [Optimal] (or raised).  Observability,
    fault injection and any warm point are stripped from [params]
    first: the anchor is bookkeeping, not a sweep candidate.  Sweeps
    seed {e every} candidate from this one anchor rather than chaining
    neighbours, so the seed — and therefore every candidate's iteration
    trajectory — is independent of solve order: bit-identical across
    [--jobs] levels and across journal-restored resumes. *)
val warm_anchor :
  ?params:Conic.Socp.params -> Taskgraph.Config.t -> Conic.Socp.warm option

(** [obs_of params obs] is the effective context of a call taking both
    [?obs] and [?params]: an explicit [obs] wins, else the one already
    riding in [params]. *)
val obs_of : Conic.Socp.params option -> Obs.Ctx.t option -> Obs.Ctx.t option

(** [float_to_token f] renders [f] as a hex float literal. *)
val float_to_token : float -> string

(** Token scanners over a [Scanf] buffer; all raise
    [Scanf.Scan_failure] or [Failure] on malformed input. *)

val scan_token : Scanf.Scanning.in_channel -> string
val scan_float : Scanf.Scanning.in_channel -> float
val scan_int : Scanf.Scanning.in_channel -> int
val scan_quoted : Scanf.Scanning.in_channel -> string
val expect_token : Scanf.Scanning.in_channel -> string -> unit
