module Config = Taskgraph.Config
module Srdf = Dataflow.Srdf
module Analysis = Dataflow.Analysis

let bound cfg g (mapped : Config.mapped) ~src ~dst =
  if Config.task_graph cfg src <> g || Config.task_graph cfg dst <> g then
    invalid_arg "Latency.bound: tasks of another graph";
  match
    Dataflow_model.build cfg g ~budget:mapped.Config.budget
      ~capacity:mapped.Config.capacity
  with
  | exception Invalid_argument _ -> None
  | model -> begin
    let srdf = model.Dataflow_model.srdf in
    match Analysis.pas_start_times srdf ~period:(Config.period cfg g) with
    | None -> None
    | Some s ->
      let v_src = model.Dataflow_model.actor1 src
      and v_dst = model.Dataflow_model.actor2 dst in
      Some
        (s.(Srdf.actor_id v_dst) +. Srdf.duration srdf v_dst
        -. s.(Srdf.actor_id v_src))
  end

let chain_bound cfg g mapped =
  let tasks = Config.tasks cfg g and buffers = Config.buffers cfg g in
  let has_input w = List.exists (fun b -> Config.buffer_dst cfg b = w) buffers in
  let has_output w = List.exists (fun b -> Config.buffer_src cfg b = w) buffers in
  match
    ( List.filter (fun w -> not (has_input w)) tasks,
      List.filter (fun w -> not (has_output w)) tasks )
  with
  | [ src ], [ dst ] -> bound cfg g mapped ~src ~dst
  | _ ->
    invalid_arg
      "Latency.chain_bound: the graph has no unique source/sink pair"
