module Config = Taskgraph.Config

let with_periods cfg ~scale =
  if scale <= 0.0 || not (Float.is_finite scale) then
    invalid_arg "Dse.with_periods: scale must be > 0";
  Config.copy ~period_scale:scale cfg

let min_period_scale ?(tolerance = 1e-4) ?params ?on_probe cfg =
  (* One mutable clone serves every probe: only the periods change
     between probes, so rescaling them in place beats rebuilding the
     whole configuration each time. *)
  let probe_cfg = Config.copy cfg in
  let base = List.map (fun g -> (g, Config.period cfg g)) (Config.graphs cfg) in
  let feasible scale =
    (match on_probe with None -> () | Some f -> f scale);
    List.iter (fun (g, mu) -> Config.set_period probe_cfg g (mu *. scale)) base;
    match Mapping.solve ?params probe_cfg with
    | Ok r -> r.Mapping.verification = []
    | Error _ -> false
  in
  (* Grow until feasible, then bisect. *)
  let rec find_hi scale =
    if scale > 1000.0 then None
    else if feasible scale then Some scale
    else find_hi (2.0 *. scale)
  in
  match find_hi 1.0 with
  | None -> None
  | Some hi0 ->
    let rec bisect lo hi iters =
      if iters = 0 || hi -. lo <= tolerance *. hi then hi
      else begin
        let mid = 0.5 *. (lo +. hi) in
        if mid <= 0.0 then hi
        else if feasible mid then bisect lo mid (iters - 1)
        else bisect mid hi (iters - 1)
      end
    in
    (* The period can never drop below the largest WCET; anchor the
       lower end there instead of zero to save probes. *)
    let lo0 =
      List.fold_left
        (fun acc w ->
          let mu = Config.period cfg (Config.task_graph cfg w) in
          Float.max acc (Config.wcet cfg w /. mu))
        1e-9 (Config.all_tasks cfg)
    in
    Some (bisect (Float.min lo0 hi0) hi0 60)

let throughput_curve ?params ?pool cfg ~caps =
  let solve_cap cap =
    let capped = Config.copy cfg in
    List.iter
      (fun b -> Config.set_max_capacity capped b (Some cap))
      (Config.all_buffers capped);
    match min_period_scale ?params capped with
    | None -> None
    | Some scale -> begin
      match Config.graphs capped with
      | g :: _ -> Some (cap, Config.period capped g *. scale)
      | [] -> None
    end
  in
  let points =
    match pool with
    | None -> List.map solve_cap caps
    | Some pool -> Parallel.Pool.map pool solve_cap caps
  in
  List.filter_map Fun.id points
