module Config = Taskgraph.Config

let with_periods cfg ~scale =
  if scale <= 0.0 || not (Float.is_finite scale) then
    invalid_arg "Dse.with_periods: scale must be > 0";
  let fresh = Config.create ~granularity:(Config.granularity cfg) () in
  let procs =
    List.map
      (fun p ->
        ( Config.proc_id p,
          Config.add_processor fresh ~name:(Config.proc_name cfg p)
            ~replenishment:(Config.replenishment cfg p)
            ~overhead:(Config.overhead cfg p) () ))
      (Config.processors cfg)
  in
  let mems =
    List.map
      (fun m ->
        ( Config.memory_id m,
          Config.add_memory fresh ~name:(Config.memory_name cfg m)
            ~capacity:(Config.memory_capacity cfg m) ))
      (Config.memories cfg)
  in
  List.iter
    (fun g ->
      let fresh_g =
        Config.add_graph fresh ~name:(Config.graph_name cfg g)
          ~period:(Config.period cfg g *. scale)
          ?latency_bound:(Config.latency_bound cfg g) ()
      in
      let tasks =
        List.map
          (fun w ->
            ( Config.task_id w,
              Config.add_task fresh fresh_g ~name:(Config.task_name cfg w)
                ~proc:(List.assoc (Config.proc_id (Config.task_proc cfg w)) procs)
                ~wcet:(Config.wcet cfg w)
                ~weight:(Config.task_weight cfg w) () ))
          (Config.tasks cfg g)
      in
      List.iter
        (fun b ->
          ignore
            (Config.add_buffer fresh fresh_g
               ~name:(Config.buffer_name cfg b)
               ~src:(List.assoc (Config.task_id (Config.buffer_src cfg b)) tasks)
               ~dst:(List.assoc (Config.task_id (Config.buffer_dst cfg b)) tasks)
               ~memory:
                 (List.assoc
                    (Config.memory_id (Config.buffer_memory cfg b))
                    mems)
               ~container_size:(Config.container_size cfg b)
               ~initial_tokens:(Config.initial_tokens cfg b)
               ~weight:(Config.buffer_weight cfg b)
               ?max_capacity:(Config.max_capacity cfg b) ()))
        (Config.buffers cfg g))
    (Config.graphs cfg);
  fresh

let feasible ?params cfg scale =
  match Mapping.solve ?params (with_periods cfg ~scale) with
  | Ok r -> r.Mapping.verification = []
  | Error _ -> false

let min_period_scale ?(tolerance = 1e-4) ?params cfg =
  (* Grow until feasible, then bisect. *)
  let rec find_hi scale =
    if scale > 1000.0 then None
    else if feasible ?params cfg scale then Some scale
    else find_hi (2.0 *. scale)
  in
  match find_hi 1.0 with
  | None -> None
  | Some hi0 ->
    let rec bisect lo hi iters =
      if iters = 0 || hi -. lo <= tolerance *. hi then hi
      else begin
        let mid = 0.5 *. (lo +. hi) in
        if mid <= 0.0 then hi
        else if feasible ?params cfg mid then bisect lo mid (iters - 1)
        else bisect mid hi (iters - 1)
      end
    in
    (* The period can never drop below the largest WCET; anchor the
       lower end there instead of zero to save probes. *)
    let lo0 =
      List.fold_left
        (fun acc w ->
          let mu = Config.period cfg (Config.task_graph cfg w) in
          Float.max acc (Config.wcet cfg w /. mu))
        1e-9 (Config.all_tasks cfg)
    in
    Some (bisect (Float.min lo0 hi0) hi0 60)

let throughput_curve ?params cfg ~caps =
  List.filter_map
    (fun cap ->
      let capped = with_periods cfg ~scale:1.0 in
      List.iter
        (fun b -> Config.set_max_capacity capped b (Some cap))
        (Config.all_buffers capped);
      match min_period_scale ?params capped with
      | None -> None
      | Some scale -> begin
        match Config.graphs capped with
        | g :: _ -> Some (cap, Config.period capped g *. scale)
        | [] -> None
      end)
    caps
