module Config = Taskgraph.Config
module Recovery = Robust.Recovery
module Fault = Robust.Fault

let with_periods cfg ~scale =
  if scale <= 0.0 || not (Float.is_finite scale) then
    invalid_arg "Dse.with_periods: scale must be > 0";
  Config.copy ~period_scale:scale cfg

let min_period_scale ?(tolerance = 1e-4) ?params ?policy ?on_probe ?on_failure
    cfg =
  (* One mutable clone serves every probe: only the periods change
     between probes, so rescaling them in place beats rebuilding the
     whole configuration each time. *)
  let probe_cfg = Config.copy cfg in
  let base = List.map (fun g -> (g, Config.period cfg g)) (Config.graphs cfg) in
  let feasible scale =
    (match on_probe with None -> () | Some f -> f scale);
    List.iter (fun (g, mu) -> Config.set_period probe_cfg g (mu *. scale)) base;
    match Mapping.solve ?params ?policy probe_cfg with
    | Ok r -> r.Mapping.verification = []
    | Error (Mapping.Solver_failure _ as e) ->
      (* A solver failure is not an infeasibility verdict: let callers
         (the sweep drivers) distinguish a broken probe from a genuine
         dead end before treating the whole search as infeasible. *)
      (match on_failure with None -> () | Some f -> f e);
      false
    | Error _ -> false
  in
  (* Grow until feasible, then bisect. *)
  let rec find_hi scale =
    if scale > 1000.0 then None
    else if feasible scale then Some scale
    else find_hi (2.0 *. scale)
  in
  match find_hi 1.0 with
  | None -> None
  | Some hi0 ->
    let rec bisect lo hi iters =
      if iters = 0 || hi -. lo <= tolerance *. hi then hi
      else begin
        let mid = 0.5 *. (lo +. hi) in
        if mid <= 0.0 then hi
        else if feasible mid then bisect lo mid (iters - 1)
        else bisect mid hi (iters - 1)
      end
    in
    (* The period can never drop below the largest WCET; anchor the
       lower end there instead of zero to save probes. *)
    let lo0 =
      List.fold_left
        (fun acc w ->
          let mu = Config.period cfg (Config.task_graph cfg w) in
          Float.max acc (Config.wcet cfg w /. mu))
        1e-9 (Config.all_tasks cfg)
    in
    Some (bisect (Float.min lo0 hi0) hi0 60)

type curve_point = {
  cap : int;
  outcome : (float option, string) Stdlib.result;
}

let curve_points points =
  List.filter_map
    (fun p ->
      match p.outcome with Ok (Some period) -> Some (p.cap, period) | _ -> None)
    points

let curve_skipped points =
  List.filter_map
    (fun p ->
      match p.outcome with Error reason -> Some (p.cap, reason) | Ok _ -> None)
    points

let throughput_curve ?params ?policy ?pool cfg ~caps =
  let policy =
    match policy with Some p -> p | None -> Recovery.default_policy ()
  in
  (* Each candidate gets its own clone, its own slice of the fault plan
     and — crucially — its own exception barrier: a crash in one cap's
     bisection becomes that point's outcome instead of killing the
     sweep at the pool join. *)
  let solve_cap (index, cap) =
    let candidate_policy =
      { policy with Recovery.fault = Fault.for_candidate policy.Recovery.fault ~index }
    in
    let failed = ref None in
    let on_failure e =
      if !failed = None then failed := Some (Mapping.short_reason e)
    in
    match
      let capped = Config.copy cfg in
      List.iter
        (fun b -> Config.set_max_capacity capped b (Some cap))
        (Config.all_buffers capped);
      match
        min_period_scale ?params ~policy:candidate_policy ~on_failure capped
      with
      | None -> None
      | Some scale -> begin
        match Config.graphs capped with
        | g :: _ -> Some (Config.period capped g *. scale)
        | [] -> None
      end
    with
    | Some period -> { cap; outcome = Ok (Some period) }
    | None -> begin
      (* No feasible scale: an infeasibility verdict everywhere is the
         honest [Ok None]; a failing solver is a skip with a reason. *)
      match !failed with
      | Some reason -> { cap; outcome = Error reason }
      | None -> { cap; outcome = Ok None }
    end
    | exception e ->
      { cap; outcome = Error ("uncaught exception: " ^ Printexc.to_string e) }
  in
  let indexed = List.mapi (fun i cap -> (i, cap)) caps in
  match pool with
  | None -> List.map solve_cap indexed
  | Some pool ->
    List.map2
      (fun (_, cap) r ->
        match r with
        | Ok p -> p
        | Error e ->
          { cap; outcome = Error ("uncaught exception: " ^ Printexc.to_string e) })
      indexed
      (Parallel.Pool.map_result pool solve_cap indexed)
