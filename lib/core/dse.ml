module Config = Taskgraph.Config
module Recovery = Robust.Recovery
module Fault = Robust.Fault

let with_periods cfg ~scale =
  if scale <= 0.0 || not (Float.is_finite scale) then
    invalid_arg "Dse.with_periods: scale must be > 0";
  Config.copy ~period_scale:scale cfg

(* Raised inside a bisection when a probe times out: once the deadline
   is blown, further probes could only time out too, so the search is
   abandoned wholesale instead of bisecting on garbage. *)
exception Probe_expired

let min_period_scale ?(tolerance = 1e-4) ?params ?policy ?obs ?on_probe
    ?on_failure ?on_feasible cfg =
  (* The context rides inside the params so every probe's [Mapping.solve]
     sees it without further plumbing. *)
  let params = Durability.params_with_obs params obs in
  (* One mutable clone serves every probe: only the periods change
     between probes, so rescaling them in place beats rebuilding the
     whole configuration each time. *)
  let probe_cfg = Config.copy cfg in
  let base = List.map (fun g -> (g, Config.period cfg g)) (Config.graphs cfg) in
  let feasible scale =
    (match on_probe with None -> () | Some f -> f scale);
    List.iter (fun (g, mu) -> Config.set_period probe_cfg g (mu *. scale)) base;
    match Mapping.solve ?params ?policy probe_cfg with
    | Ok r ->
      let ok = r.Mapping.verification = [] in
      if ok then (match on_feasible with None -> () | Some f -> f r);
      ok
    | Error (Mapping.Solver_failure _ as e) ->
      (* A solver failure is not an infeasibility verdict: let callers
         (the sweep drivers) distinguish a broken probe from a genuine
         dead end before treating the whole search as infeasible. *)
      (match on_failure with None -> () | Some f -> f e);
      false
    | Error (Mapping.Timed_out _ as e) ->
      (match on_failure with None -> () | Some f -> f e);
      raise Probe_expired
    | Error _ -> false
  in
  (* Grow until feasible, then bisect. *)
  let rec find_hi scale =
    if scale > 1000.0 then None
    else if feasible scale then Some scale
    else find_hi (2.0 *. scale)
  in
  let search () =
    match find_hi 1.0 with
    | None -> None
    | Some hi0 ->
      let rec bisect lo hi iters =
        if iters = 0 || hi -. lo <= tolerance *. hi then hi
        else begin
          let mid = 0.5 *. (lo +. hi) in
          if mid <= 0.0 then hi
          else if feasible mid then bisect lo mid (iters - 1)
          else bisect mid hi (iters - 1)
        end
      in
      (* The period can never drop below the largest WCET; anchor the
         lower end there instead of zero to save probes. *)
      let lo0 =
        List.fold_left
          (fun acc w ->
            let mu = Config.period cfg (Config.task_graph cfg w) in
            Float.max acc (Config.wcet cfg w /. mu))
          1e-9 (Config.all_tasks cfg)
      in
      Some (bisect (Float.min lo0 hi0) hi0 60)
  in
  match search () with v -> v | exception Probe_expired -> None

type curve_point = {
  cap : int;
  outcome : (float option, string) Stdlib.result;
  certified : bool;
}

let curve_points points =
  List.filter_map
    (fun p ->
      match p.outcome with Ok (Some period) -> Some (p.cap, period) | _ -> None)
    points

let curve_skipped points =
  List.filter_map
    (fun p ->
      match p.outcome with Error reason -> Some (p.cap, reason) | Ok _ -> None)
    points

(* Journal payload of one curve point (docs/formats.md).  A timed-out
   candidate is deliberately not journaled — a timeout is a property of
   this run's deadline, not of the instance, so a resume retries it. *)
let encode_point p =
  match p.outcome with
  | Ok (Some period) ->
    Some
      (String.concat " "
         [
           "period";
           Durability.float_to_token period;
           (if p.certified then "cert" else "uncert");
         ])
  | Ok None -> Some "infeasible"
  | Error reason ->
    if String.equal reason "timed out" then None
    else Some (Printf.sprintf "skip %S" reason)

let decode_point cap payload =
  if String.equal payload "infeasible" then
    Some { cap; outcome = Ok None; certified = false }
  else
    match
      let ib = Scanf.Scanning.from_string payload in
      match Durability.scan_token ib with
      | "period" ->
        let period = Durability.scan_float ib in
        let certified =
          match Durability.scan_token ib with
          | "cert" -> true
          | "uncert" -> false
          | _ -> raise (Scanf.Scan_failure "malformed certification token")
        in
        Some { cap; outcome = Ok (Some period); certified }
      | "skip" ->
        Some { cap; outcome = Error (Durability.scan_quoted ib); certified = false }
      | _ -> None
    with
    | v -> v
    | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> None

let throughput_curve ?params ?policy ?pool ?deadline ?candidate_deadline
    ?journal ?cancel ?obs ?on_progress ?(warm_start = true) cfg ~caps =
  let policy =
    match policy with Some p -> p | None -> Recovery.default_policy ()
  in
  let deadline = Option.value deadline ~default:Durable.Deadline.none in
  let caps = Array.of_list caps in
  (* Each candidate gets its own clone, its own slice of the fault plan
     and — crucially — its own exception barrier: a crash in one cap's
     bisection becomes that point's outcome instead of killing the
     sweep at the pool join. *)
  let solve_cap index =
    let cap = caps.(index) in
    let candidate_policy =
      { policy with Recovery.fault = Fault.for_candidate policy.Recovery.fault ~index }
    in
    let params =
      Durability.params_with_obs
        (Durability.params_with_deadline params ~deadline ~candidate_deadline)
        obs
    in
    let failed = ref None in
    let on_failure e =
      if !failed = None then failed := Some (Mapping.short_reason e)
    in
    (* The bisection only ever narrows [hi] onto feasible probes, so
       the last feasible probe *is* the accepted period: its
       certificate decides the point's [certified] verdict. *)
    let last_certified = ref false in
    let on_feasible r =
      last_certified := Certify.certified r.Mapping.certificate
    in
    let point =
      match
        let capped = Config.copy cfg in
        List.iter
          (fun b -> Config.set_max_capacity capped b (Some cap))
          (Config.all_buffers capped);
        (* One cold anchor per candidate (this cap, unscaled period)
           seeds every probe of the bisection.  Anchoring on the
           candidate's own data keeps the seed a pure function of the
           candidate, so the point is bit-identical however the sweep
           is scheduled or resumed; see [Durability.warm_anchor]. *)
        let params =
          if not warm_start then params
          else
            Durability.params_with_warm params
              (Durability.warm_anchor ?params capped)
        in
        match
          min_period_scale ?params ~policy:candidate_policy ~on_failure
            ~on_feasible capped
        with
        | None -> None
        | Some scale -> begin
          match Config.graphs capped with
          | g :: _ -> Some (Config.period capped g *. scale)
          | [] -> None
        end
      with
      | Some period ->
        { cap; outcome = Ok (Some period); certified = !last_certified }
      | None -> begin
        (* No feasible scale: an infeasibility verdict everywhere is the
           honest [Ok None]; a failing solver is a skip with a reason. *)
        match !failed with
        | Some reason -> { cap; outcome = Error reason; certified = false }
        | None -> { cap; outcome = Ok None; certified = false }
      end
      | exception e ->
        {
          cap;
          outcome = Error ("uncaught exception: " ^ Printexc.to_string e);
          certified = false;
        }
    in
    (match obs with
    | None -> ()
    | Some o ->
      let verdict =
        match point.outcome with
        | Ok (Some _) -> "feasible"
        | Ok None -> "infeasible"
        | Error reason ->
          if String.equal reason "timed out" then "timed out" else "skipped"
      in
      Obs.Ctx.emit o (Obs.Trace.Candidate { index; verdict }));
    point
  in
  let results, progress =
    Durable.Sweep.run ?pool ?journal ?obs ~deadline ?cancel
      ~encode:encode_point
      ~decode:(fun i payload -> decode_point caps.(i) payload)
      ~n:(Array.length caps) solve_cap
  in
  (match on_progress with None -> () | Some f -> f progress);
  List.filter_map Fun.id (Array.to_list results)
