(** Task-to-processor binding search.

    The paper computes budgets and buffer sizes for a {e given} binding
    and names the computation of the binding itself as future work
    (Section VI).  This module provides that step on top of
    {!Mapping.solve}: it explores candidate bindings, runs the joint
    budget/buffer program for each, and returns the best verified
    mapping.

    Bindings assume homogeneous processors with respect to execution
    time (a task's [χ] does not depend on the processor), matching the
    paper's model where [χ : W → ℝ⁺]. *)

type strategy =
  | Exhaustive of int
      (** try every assignment of tasks to processors, up to the given
          number of candidate bindings (safety bound; candidates beyond
          it are not explored) *)
  | Greedy_utilization
      (** sort tasks by their minimal utilisation [χ(w)/µ(T)]
          descending and place each on the processor with the largest
          remaining capacity; a single solve *)
  | First_fit
      (** place tasks in declaration order on the first processor whose
          remaining capacity fits the task's minimal budget reservation;
          a single solve *)

type outcome = {
  config : Taskgraph.Config.t;
      (** a rebuilt configuration carrying the chosen binding (same
          names as the input, so handles are recovered by name) *)
  assignment : (string * string) list;  (** task name → processor name *)
  result : Mapping.result;  (** the joint solve for the chosen binding *)
  explored : int;  (** number of candidate bindings actually solved *)
}

(** [rebind cfg ~assign] clones [cfg] with the processor of every task
    replaced by [assign task] (handles of the {e original}
    configuration).  Everything else — names, weights, buffers,
    memories, bounds — is preserved, so [Config.pp] output differs only
    in the [proc] attributes. *)
val rebind :
  Taskgraph.Config.t ->
  assign:(Taskgraph.Config.task -> Taskgraph.Config.proc) ->
  Taskgraph.Config.t

(** [optimize ?strategy ?params cfg] searches for a binding whose joint
    mapping minimises the rounded objective.  The input binding of
    [cfg] is ignored; only its processor set matters.  Defaults to
    [Greedy_utilization].
    @return [Error msg] when no explored binding is feasible. *)
val optimize :
  ?strategy:strategy ->
  ?params:Conic.Socp.params ->
  Taskgraph.Config.t ->
  (outcome, string) Stdlib.result

(** [rebind_memories cfg ~assign] clones [cfg] with the memory of every
    buffer replaced by [assign buffer] (handles of the original
    configuration); everything else is preserved. *)
val rebind_memories :
  Taskgraph.Config.t ->
  assign:(Taskgraph.Config.buffer -> Taskgraph.Config.memory) ->
  Taskgraph.Config.t

(** [optimize_memories ?strategy ?params cfg] searches over
    buffer-to-memory placements, the second half of the paper's future
    work ("compute … the binding of buffers to memories").  [Exhaustive]
    enumerates placements up to its limit; the heuristics place buffers
    one by one — largest minimal footprint first for
    [Greedy_utilization], declaration order for [First_fit] — each into
    the memory with the most remaining capacity (greedy) or the first
    that fits (first-fit), reserving [(ι + 1)·ζ] per buffer.
    @return [Error msg] when no explored placement is feasible. *)
val optimize_memories :
  ?strategy:strategy ->
  ?params:Conic.Socp.params ->
  Taskgraph.Config.t ->
  (outcome, string) Stdlib.result
