(** Conservative rounding of continuous optima onto the discrete grids:
    budgets onto multiples of the allocation granularity
    [β = g·⌈β′/g⌉], buffer capacities onto integer container counts
    [γ = ι + ⌈δ′⌉].

    Lives below both {!Mapping} and {!Two_phase} so either flow (and
    the recovery fallback from one to the other) can share the exact
    same grid semantics. *)

(** [round_eps] is the snap tolerance: a continuous value within it of
    a grid point is snapped down instead of rounded a whole granule up.
    It matches the solver accuracy (1e-6). *)
val round_eps : float

(** Raised (instead of rounding garbage) when a solver output reaching
    the grid is NaN or infinite; [what] is ["budget"] or
    ["buffer space"]. *)
exception Non_finite of { what : string; value : float }

val round_budget_eps : eps:float -> granularity:float -> float -> float
val round_capacity_eps : eps:float -> initial_tokens:int -> float -> int

(** [round_budget ~granularity beta'] is [g·⌈β′/g⌉] with the
    {!round_eps} snap. *)
val round_budget : granularity:float -> float -> float

(** [round_capacity ~initial_tokens delta'] is [max 1 (ι + ⌈δ′⌉)] with
    the same snap. *)
val round_capacity : initial_tokens:int -> float -> int
