(** Pareto frontier of the budget / buffer trade-off.

    The paper exposes the trade-off through the coefficients of
    Objective (5): "different trade-offs between budget and buffer
    sizes can be made by changing the coefficients of the optimised
    cost function".  Because the continuous problem is convex, sweeping
    the weight ratio between the budget term and the buffer term traces
    the (convex hull of the) Pareto frontier between total budget and
    total buffer space.  This module automates that sweep. *)

type point = {
  weight_ratio : float;
      (** budget weight over buffer weight used for this point *)
  budget_sum : float;  (** Σ β′(w) at the continuous optimum *)
  buffer_containers : int;
      (** Σ γ(b) of the rounded mapping (total containers) *)
  rounded_objective : float;
}

(** [frontier ?steps ?params ?pool cfg] solves the joint program for
    [steps] (default 9) weight ratios spread geometrically between
    heavily budget-dominant and heavily buffer-dominant and returns the
    non-dominated points sorted by increasing buffer use.  Each ratio
    reweights a private clone of [cfg], so the configuration is never
    mutated and the candidate solves are independent; with [?pool] they
    run concurrently, with results bit-identical to the sequential
    sweep (see {!Parallel.Pool.map}).  Infeasible instances yield the
    empty list. *)
val frontier :
  ?steps:int -> ?params:Conic.Socp.params -> ?pool:Parallel.Pool.t ->
  Taskgraph.Config.t -> point list

(** [pp_point ppf p] prints one frontier point. *)
val pp_point : Format.formatter -> point -> unit
