(** Pareto frontier of the budget / buffer trade-off.

    The paper exposes the trade-off through the coefficients of
    Objective (5): "different trade-offs between budget and buffer
    sizes can be made by changing the coefficients of the optimised
    cost function".  Because the continuous problem is convex, sweeping
    the weight ratio between the budget term and the buffer term traces
    the (convex hull of the) Pareto frontier between total budget and
    total buffer space.  This module automates that sweep. *)

type point = {
  weight_ratio : float;
      (** budget weight over buffer weight used for this point *)
  budget_sum : float;  (** Σ β′(w) at the continuous optimum *)
  buffer_containers : int;
      (** Σ γ(b) of the rounded mapping (total containers) *)
  rounded_objective : float;
  certified : bool;
      (** whether the rounded mapping behind this point carries an
          exact rational certificate (see {!Certify}); journaled, so a
          restored point keeps the original verdict *)
}

(** A frontier sweep: the surviving non-dominated points plus the
    [(ratio, reason)] of candidates whose solve failed outright (the
    rest of the frontier is still returned — one permanently failing
    candidate costs one point, not the sweep). *)
type sweep = { points : point list; skipped : (float * string) list }

(** [frontier ?steps ?params ?policy ?pool cfg] solves the joint
    program for [steps] (default 9) weight ratios spread geometrically
    between heavily budget-dominant and heavily buffer-dominant and
    returns the non-dominated points sorted by increasing buffer use.
    Each ratio reweights a private clone of [cfg], so the configuration
    is never mutated and the candidate solves are independent; with
    [?pool] they run concurrently, with results bit-identical to the
    sequential sweep (see {!Parallel.Pool.map_result}).  Infeasible
    instances yield an empty [points] list; failing candidates land in
    [skipped].  A fault plan restricted with [only=I] applies to the
    0-based [I]-th ratio of the sweep.

    Durability (docs/robustness.md): [?journal] records each ratio's
    raw outcome (frontier pruning always re-runs over the union of
    restored and fresh outcomes); [?deadline] /
    [?candidate_deadline] / [?cancel] stop the sweep cooperatively, and
    a timed-out ratio lands in [skipped] with reason ["timed out"]
    without being journaled, so a resume retries it.  [?on_progress]
    reports the restored/solved/abandoned split.

    Observability (docs/observability.md): [?obs] rides into every
    candidate's solver and emits one {!Obs.Trace.Candidate} event per
    newly-solved ratio (verdict ["ok"], ["infeasible"] or
    ["skipped"]), one {!Obs.Trace.Restore} event per slot when a
    journal is consulted, and the pool's dispatch/join events.

    Warm starts: unless [~warm_start:false], one cold anchor solve at
    the first ratio's weights seeds every candidate (see
    {!Budgetbuf.Durability.warm_anchor}) — order-independent, hence
    bit-identical across pool sizes and journal resumes.
    @raise Invalid_argument if [steps < 1]. *)
val frontier :
  ?steps:int ->
  ?params:Conic.Socp.params ->
  ?policy:Robust.Recovery.policy ->
  ?pool:Parallel.Pool.t ->
  ?deadline:Durable.Deadline.t ->
  ?candidate_deadline:float ->
  ?journal:Durable.Journal.t ->
  ?cancel:(unit -> bool) ->
  ?obs:Obs.Ctx.t ->
  ?on_progress:(Durable.Sweep.progress -> unit) ->
  ?warm_start:bool ->
  Taskgraph.Config.t ->
  sweep

(** [pp_point ppf p] prints one frontier point. *)
val pp_point : Format.formatter -> point -> unit
