(** Task graph → SRDF construction (Section II-C of the paper).

    Each task [w] becomes a two-actor dataflow component:

    {v
        ρ(v1) = ̺(π(w)) − β(w)          (waiting for the TDM window)
        ρ(v2) = ̺(π(w))·χ(w) / β(w)     (processing under the budget)
        v1 → v2 with 0 tokens, v2 → v2 self-loop with 1 token
    v}

    Each buffer [b] from [wa] to [wb] becomes a pair of opposite
    queues: the data queue [va2 → vb1] carrying [ι(b)] initial tokens
    and the space queue [vb2 → va1] carrying [γ(b) − ι(b)] initially
    empty containers.  Wiggers et al. (EMSOFT 2009) prove this model
    conservative for budget schedulers, so a PAS of the SRDF graph with
    period [µ(T)] certifies the task graph's throughput. *)

type t = {
  srdf : Dataflow.Srdf.t;
  actor1 : Taskgraph.Config.task -> Dataflow.Srdf.actor;
  actor2 : Taskgraph.Config.task -> Dataflow.Srdf.actor;
  self_edge : Taskgraph.Config.task -> Dataflow.Srdf.edge;
  transition_edge : Taskgraph.Config.task -> Dataflow.Srdf.edge;
      (** the zero-token [v1 → v2] queue (queue set [E1]) *)
  data_edge : Taskgraph.Config.buffer -> Dataflow.Srdf.edge;
  space_edge : Taskgraph.Config.buffer -> Dataflow.Srdf.edge;
}

(** [build cfg g ~budget ~capacity] constructs the SRDF graph of task
    graph [g] for the given budgets (Mcycles) and buffer capacities
    (containers).
    @raise Invalid_argument if a budget is not in (0, ̺(π(w))] or a
    capacity is below the buffer's initially-filled containers. *)
val build :
  Taskgraph.Config.t ->
  Taskgraph.Config.graph ->
  budget:(Taskgraph.Config.task -> float) ->
  capacity:(Taskgraph.Config.buffer -> int) ->
  t

(** [throughput_ok cfg g mapped] checks that the mapped budgets and
    capacities admit a PAS with period [µ(g)]. *)
val throughput_ok :
  Taskgraph.Config.t -> Taskgraph.Config.graph -> Taskgraph.Config.mapped ->
  bool

(** [verify cfg mapped] checks the whole mapped configuration:
    throughput of every task graph (via {!throughput_ok}), processor
    budget capacity (Constraint (4) plus overhead), and memory
    capacity.  Returns the list of structured violations, empty when
    the mapping is valid; render with {!Violation.to_string}. *)
val verify : Taskgraph.Config.t -> Taskgraph.Config.mapped -> Violation.t list

(** [min_feasible_period cfg g mapped] is the smallest period the
    mapped graph can sustain (its SRDF maximum cycle ratio), useful for
    reporting slack; [None] when the graph deadlocks. *)
val min_feasible_period :
  Taskgraph.Config.t -> Taskgraph.Config.graph -> Taskgraph.Config.mapped ->
  float option
