(* The tolerance matches the solver accuracy: a continuous value within
   1e-6 of a grid point is snapped down rather than rounded a whole
   granule up.  Callers re-verify the rounded mapping and fall back to
   strict (eps = 0) rounding should the snap ever be unsound. *)
let round_eps = 1e-6

exception Non_finite of { what : string; value : float }

(* A NaN or infinite solver output would flow straight through
   [ceil]/[int_of_float] into garbage (NaN budgets, 0 capacities);
   refuse loudly with a typed error the recovery ladder can catch. *)
let ensure_finite what value =
  if not (Float.is_finite value) then raise (Non_finite { what; value })

let round_budget_eps ~eps ~granularity beta' =
  ensure_finite "budget" beta';
  let q = ceil ((beta' /. granularity) -. eps) in
  granularity *. Float.max 1.0 q

let round_capacity_eps ~eps ~initial_tokens delta' =
  ensure_finite "buffer space" delta';
  let q = int_of_float (ceil (delta' -. eps)) in
  Int.max 1 (initial_tokens + Int.max 0 q)

let round_budget ~granularity beta' =
  round_budget_eps ~eps:round_eps ~granularity beta'

let round_capacity ~initial_tokens delta' =
  round_capacity_eps ~eps:round_eps ~initial_tokens delta'
