(* The tolerance matches the solver accuracy: a continuous value within
   1e-6 of a grid point is snapped down rather than rounded a whole
   granule up.  Callers re-verify the rounded mapping and fall back to
   strict (eps = 0) rounding should the snap ever be unsound. *)
let round_eps = 1e-6

let round_budget_eps ~eps ~granularity beta' =
  let q = ceil ((beta' /. granularity) -. eps) in
  granularity *. Float.max 1.0 q

let round_capacity_eps ~eps ~initial_tokens delta' =
  let q = int_of_float (ceil (delta' -. eps)) in
  Int.max 1 (initial_tokens + Int.max 0 q)

let round_budget ~granularity beta' =
  round_budget_eps ~eps:round_eps ~granularity beta'

let round_capacity ~initial_tokens delta' =
  round_capacity_eps ~eps:round_eps ~initial_tokens delta'
