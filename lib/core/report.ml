module Config = Taskgraph.Config

type processor_load = {
  proc : Config.proc;
  allocated : float;
  utilisation : float;
}

type memory_load = {
  memory : Config.memory;
  occupied : int;
  fraction : float;
}

type graph_report = {
  graph : Config.graph;
  period_required : float;
  period_min : float option;
  slack : float option;
  latency : float option;
  critical : Sensitivity.critical option;
}

type t = {
  processors : processor_load list;
  memories : memory_load list;
  graphs : graph_report list;
  violations : string list;
}

let build cfg (mapped : Config.mapped) =
  let processors =
    List.map
      (fun proc ->
        let allocated =
          List.fold_left
            (fun acc w -> acc +. mapped.Config.budget w)
            (Config.overhead cfg proc)
            (Config.tasks_on cfg proc)
        in
        {
          proc;
          allocated;
          utilisation = allocated /. Config.replenishment cfg proc;
        })
      (Config.processors cfg)
  in
  let memories =
    List.map
      (fun memory ->
        let occupied =
          List.fold_left
            (fun acc b ->
              acc + (mapped.Config.capacity b * Config.container_size cfg b))
            0
            (Config.buffers_in cfg memory)
        in
        let cap = Config.memory_capacity cfg memory in
        {
          memory;
          occupied;
          fraction =
            (if cap = 0 then 0.0
             else float_of_int occupied /. float_of_int cap);
        })
      (Config.memories cfg)
  in
  let graphs =
    List.map
      (fun graph ->
        let period_min = Dataflow_model.min_feasible_period cfg graph mapped in
        {
          graph;
          period_required = Config.period cfg graph;
          period_min;
          slack = Sensitivity.throughput_slack cfg graph mapped;
          latency =
            (try Latency.chain_bound cfg graph mapped
             with Invalid_argument _ -> None);
          critical = Sensitivity.critical_cycle cfg graph mapped;
        })
      (Config.graphs cfg)
  in
  {
    processors;
    memories;
    graphs;
    violations = List.map Violation.to_string (Dataflow_model.verify cfg mapped);
  }

let pp cfg ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "processors:@,";
  List.iter
    (fun p ->
      Format.fprintf ppf "  %-10s %6.2f of %6.2f Mcycles (%.0f%%)@,"
        (Config.proc_name cfg p.proc)
        p.allocated
        (Config.replenishment cfg p.proc)
        (100.0 *. p.utilisation))
    t.processors;
  Format.fprintf ppf "memories:@,";
  List.iter
    (fun m ->
      Format.fprintf ppf "  %-10s %6d of %6d units (%.0f%%)@,"
        (Config.memory_name cfg m.memory)
        m.occupied
        (Config.memory_capacity cfg m.memory)
        (100.0 *. m.fraction))
    t.memories;
  Format.fprintf ppf "graphs:@,";
  List.iter
    (fun g ->
      Format.fprintf ppf "  %-10s period %.3f required"
        (Config.graph_name cfg g.graph) g.period_required;
      (match g.period_min with
      | Some p -> Format.fprintf ppf ", %.3f achievable" p
      | None -> Format.fprintf ppf ", deadlocked");
      (match g.slack with
      | Some s -> Format.fprintf ppf ", slack %.3f" s
      | None -> ());
      (match g.latency with
      | Some l -> Format.fprintf ppf ", latency %.3f" l
      | None -> ());
      Format.fprintf ppf "@,";
      match g.critical with
      | Some c ->
        Format.fprintf ppf "    %a@," (Sensitivity.pp_critical cfg) c
      | None -> ())
    t.graphs;
  (match t.violations with
  | [] -> Format.fprintf ppf "verification: ok@,"
  | vs ->
    Format.fprintf ppf "violations:@,";
    List.iter (fun v -> Format.fprintf ppf "  %s@," v) vs);
  Format.fprintf ppf "@]"
