(** Sensitivity analysis of a mapped configuration.

    Once budgets and capacities are fixed, the SRDF model tells not
    just {e whether} the throughput requirement holds but also {e how
    tightly}: the throughput slack is the distance between the required
    period and the maximum cycle ratio, the critical cycle names the
    tasks and buffers that bound the throughput, and per-task budget
    slack quantifies how much each budget could shrink before the
    requirement breaks — the diagnostics a designer needs to act on the
    paper's trade-off. *)

type critical = {
  ratio : float;  (** the MCR: the smallest sustainable period *)
  tasks : Taskgraph.Config.task list;
      (** tasks with an actor on the critical cycle *)
  buffers : Taskgraph.Config.buffer list;
      (** buffers with a queue on the critical cycle *)
}

(** [throughput_slack cfg g mapped] is [µ(g) − MCR] of the mapped
    graph: how much the period could tighten before infeasibility.
    [None] when the mapped graph is deadlocked or the mapping is
    invalid. *)
val throughput_slack :
  Taskgraph.Config.t -> Taskgraph.Config.graph -> Taskgraph.Config.mapped ->
  float option

(** [critical_cycle cfg g mapped] identifies the throughput-limiting
    cycle and maps it back to tasks and buffers.  [None] when the
    mapped graph is deadlocked, invalid, or acyclic. *)
val critical_cycle :
  Taskgraph.Config.t -> Taskgraph.Config.graph -> Taskgraph.Config.mapped ->
  critical option

(** [budget_slack cfg g mapped w] is the largest reduction of [β(w)]
    (keeping every other budget and capacity fixed) that still admits a
    PAS with period [µ(g)], computed by bisection to [tolerance]
    (default 1e-6); [0.] when the budget is already critical.
    @raise Invalid_argument if [w] is not a task of [g]. *)
val budget_slack :
  ?tolerance:float ->
  Taskgraph.Config.t ->
  Taskgraph.Config.graph ->
  Taskgraph.Config.mapped ->
  Taskgraph.Config.task ->
  float

(** [pp_critical cfg ppf c] prints a critical-cycle summary. *)
val pp_critical :
  Taskgraph.Config.t -> Format.formatter -> critical -> unit
