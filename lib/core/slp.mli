(** Sequential-LP baseline for the joint computation.

    The paper argues (Section III) that it "does not see an option to
    arrive at a reasonable linearised approximation" of the budget
    reciprocal and therefore moves to a second-order cone program.
    This module implements the natural linearisation a practitioner
    would try — freeze [λ = 1/β] at the current budget estimate, solve
    the resulting {e linear} program for budgets, tokens and start
    times with the exact simplex, recompute [λ], repeat — so the claim
    can be tested instead of taken on faith.

    The iteration is a fixed-point heuristic, not a descent method: at
    the LP step the frozen [λ] makes the processing durations
    constants, so the LP is free to shrink budgets that the {e next}
    [λ] update then punishes.  The [slp] bench ablation compares its
    trajectories against the one-shot cone program. *)

type outcome = {
  mapped : Taskgraph.Config.mapped;
  objective : float;  (** Objective (5) of the final rounded mapping *)
  iterations : int;  (** LP solves performed *)
  converged : bool;
      (** true when successive budget vectors agreed to [tolerance]
          before [max_iterations] *)
  verified : bool;
      (** true when the final rounded mapping passes the exact
          feasibility re-check — linearisation gives no guarantee *)
}

type error =
  | Infeasible of string
      (** some LP step was infeasible for the frozen λ — the false
          negative inherent to linearisation *)
  | Solver_failure of string

val pp_error : Format.formatter -> error -> unit

(** [solve ?max_iterations ?tolerance ?initial cfg] runs the iteration.
    [initial] chooses the budget starting point as a fraction of each
    processor's fair share (default 1.0 = the full fair share);
    [max_iterations] defaults to 25, [tolerance] to 1e-6. *)
val solve :
  ?max_iterations:int ->
  ?tolerance:float ->
  ?initial:float ->
  Taskgraph.Config.t ->
  (outcome, error) Stdlib.result
