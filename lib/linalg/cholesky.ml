type factor = { l : Mat.t; shift : float }

exception Not_positive_definite

(* Plain (unshifted) Cholesky; returns None on a non-positive pivot.
   Works on raw rows to keep the O(n³) inner loop free of per-element
   bound checks — this factorisation dominates each interior-point
   iteration. *)
let try_factor a shift =
  let n = Mat.rows a in
  let rows = Array.init n (fun i -> Mat.row a i) in
  let l = Array.make_matrix n n 0.0 in
  let ok = ref true in
  (try
     for j = 0 to n - 1 do
       let lj = l.(j) in
       let diag = ref (rows.(j).(j) +. shift) in
       for k = 0 to j - 1 do
         let ljk = lj.(k) in
         diag := !diag -. (ljk *. ljk)
       done;
       if !diag <= 0.0 || Float.is_nan !diag then begin
         ok := false;
         raise Exit
       end;
       let ljj = sqrt !diag in
       lj.(j) <- ljj;
       for i = j + 1 to n - 1 do
         let li = l.(i) in
         let acc = ref rows.(i).(j) in
         for k = 0 to j - 1 do
           acc := !acc -. (li.(k) *. lj.(k))
         done;
         li.(j) <- !acc /. ljj
       done
     done
   with Exit -> ());
  if !ok then Some (Mat.of_arrays l) else None

let factor ?(max_shift = 1e-4) a =
  if Mat.rows a <> Mat.cols a then invalid_arg "Cholesky.factor: not square";
  let scale =
    let f = Mat.frobenius a in
    if f > 0.0 then f else 1.0
  in
  let rec attempt shift =
    match try_factor a shift with
    | Some l -> { l; shift }
    | None ->
      let next = if shift = 0.0 then 1e-14 *. scale else shift *. 100.0 in
      if next > max_shift *. scale then raise Not_positive_definite
      else attempt next
  in
  attempt 0.0

let solve_lower l b =
  let n = Mat.rows l in
  if Vec.dim b <> n then invalid_arg "Cholesky.solve_lower: dimension";
  let x = Vec.copy b in
  for i = 0 to n - 1 do
    let acc = ref x.(i) in
    for k = 0 to i - 1 do
      acc := !acc -. (Mat.get l i k *. x.(k))
    done;
    x.(i) <- !acc /. Mat.get l i i
  done;
  x

let solve_upper_t l b =
  let n = Mat.rows l in
  if Vec.dim b <> n then invalid_arg "Cholesky.solve_upper_t: dimension";
  let x = Vec.copy b in
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for k = i + 1 to n - 1 do
      acc := !acc -. (Mat.get l k i *. x.(k))
    done;
    x.(i) <- !acc /. Mat.get l i i
  done;
  x

let solve { l; _ } b = solve_upper_t l (solve_lower l b)

let ldlt a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Cholesky.ldlt: not square";
  let l = Mat.identity n in
  let d = Vec.create n in
  for j = 0 to n - 1 do
    let dj = ref (Mat.get a j j) in
    for k = 0 to j - 1 do
      let ljk = Mat.get l j k in
      dj := !dj -. (ljk *. ljk *. d.(k))
    done;
    if !dj = 0.0 || Float.is_nan !dj then raise Not_positive_definite;
    d.(j) <- !dj;
    for i = j + 1 to n - 1 do
      let acc = ref (Mat.get a i j) in
      for k = 0 to j - 1 do
        acc := !acc -. (Mat.get l i k *. Mat.get l j k *. d.(k))
      done;
      Mat.set l i j (!acc /. !dj)
    done
  done;
  (l, d)

let ldlt_solve (l, d) b =
  let y = solve_lower l b in
  let n = Vec.dim y in
  for i = 0 to n - 1 do
    y.(i) <- y.(i) /. d.(i)
  done;
  (* lᵀ·x = y with unit diagonal. *)
  let x = y in
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for k = i + 1 to n - 1 do
      acc := !acc -. (Mat.get l k i *. x.(k))
    done;
    x.(i) <- !acc
  done;
  x
