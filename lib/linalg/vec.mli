(** Dense vectors of floats.

    A thin, allocation-conscious layer over [float array] used by the
    simplex and interior-point solvers.  All binary operations require
    operands of equal dimension and raise [Invalid_argument] otherwise. *)

type t = float array

(** [create n] is the zero vector of dimension [n]. *)
val create : int -> t

(** [make n x] is the vector of dimension [n] with every entry [x]. *)
val make : int -> float -> t

(** [init n f] is [| f 0; ...; f (n-1) |]. *)
val init : int -> (int -> float) -> t

(** [dim v] is the dimension of [v]. *)
val dim : t -> int

(** [copy v] is a fresh copy of [v]. *)
val copy : t -> t

(** [of_list xs] builds a vector from a list. *)
val of_list : float list -> t

(** [to_list v] lists the entries of [v] in order. *)
val to_list : t -> float list

(** [dot u v] is the inner product [Σᵢ uᵢ·vᵢ]. *)
val dot : t -> t -> float

(** [nrm2 v] is the Euclidean norm [√(v·v)]. *)
val nrm2 : t -> float

(** [amax v] is the infinity norm [maxᵢ |vᵢ|] (0 for the empty vector). *)
val amax : t -> float

(** [asum v] is the 1-norm [Σᵢ |vᵢ|]. *)
val asum : t -> float

(** [scal a v] multiplies [v] by [a] in place. *)
val scal : float -> t -> unit

(** [scale a v] is a fresh vector equal to [a·v]. *)
val scale : float -> t -> t

(** [axpy a x y] performs [y ← a·x + y] in place. *)
val axpy : float -> t -> t -> unit

(** [add u v] is the fresh sum [u + v]. *)
val add : t -> t -> t

(** [sub u v] is the fresh difference [u − v]. *)
val sub : t -> t -> t

(** [neg v] is the fresh negation [−v]. *)
val neg : t -> t

(** [mul u v] is the fresh component-wise (Hadamard) product. *)
val mul : t -> t -> t

(** [div u v] is the fresh component-wise quotient. *)
val div : t -> t -> t

(** [map f v] applies [f] to every entry, returning a fresh vector. *)
val map : (float -> float) -> t -> t

(** [map2 f u v] combines entries pairwise, returning a fresh vector. *)
val map2 : (float -> float -> float) -> t -> t -> t

(** [fill v x] sets every entry of [v] to [x]. *)
val fill : t -> float -> unit

(** [blit src dst] copies [src] into [dst] (equal dimensions). *)
val blit : t -> t -> unit

(** [concat vs] concatenates vectors in order. *)
val concat : t list -> t

(** [slice v ~pos ~len] is a fresh copy of [len] entries starting at
    [pos]. *)
val slice : t -> pos:int -> len:int -> t

(** [max_elt v] is the largest entry of [v].
    @raise Invalid_argument on the empty vector. *)
val max_elt : t -> float

(** [min_elt v] is the smallest entry of [v].
    @raise Invalid_argument on the empty vector. *)
val min_elt : t -> float

(** [equal ~eps u v] is true when dimensions agree and entries differ by
    at most [eps] in absolute value. *)
val equal : eps:float -> t -> t -> bool

(** [pp ppf v] prints [v] as [[x0; x1; ...]] with 6 significant digits. *)
val pp : Format.formatter -> t -> unit
