(** Sparse symmetric matrices in compressed-sparse-column form and a
    sparse Cholesky factorisation with a fill-reducing ordering.

    This is the sparse counterpart of {!Cholesky}: the interior-point
    KKT normal equations [GᵀW⁻²G] have a fixed sparsity pattern across
    iterations (the NT scaling mixes rows only {e within} a cone
    block), so the expensive combinatorial work — the minimum-degree
    ordering, the elimination tree, the pattern of the factor — is
    done once per solve ({!symbolic}) while each iteration only runs
    the cheap numeric refactorisation ({!factor} / {!refactor}).

    Only the upper triangle is stored.  All orderings and tie-breaks
    are deterministic (smallest index wins), so factorisations are
    bit-identical across runs and domains. *)

type sym
(** A symmetric matrix: upper-triangle CSC with sorted, duplicate-free
    columns (canonicalised by {!create}). *)

exception Not_positive_definite

(** [create ~n triplets] builds an [n×n] symmetric matrix from
    [(i, j, v)] triplets.  Entries are mirrored into the upper
    triangle, sorted, and duplicates are summed.  Structural zeros are
    kept (the pattern is reused across refactorisations).
    @raise Invalid_argument on an index out of range. *)
val create : n:int -> (int * int * float) list -> sym

val dim : sym -> int

(** [nnz a] is the number of stored upper-triangle entries. *)
val nnz : sym -> int

(** [clear a] zeroes every stored value, keeping the pattern. *)
val clear : sym -> unit

(** [add a i j v] accumulates [v] into the stored entry [(i, j)]
    (either triangle may be named; the upper one is touched).
    @raise Invalid_argument if [(i, j)] is not in the pattern. *)
val add : sym -> int -> int -> float -> unit

(** [get a i j] is the stored value, or [0.] outside the pattern. *)
val get : sym -> int -> int -> float

(** [mul_vec a x] is the full symmetric product [A·x]. *)
val mul_vec : sym -> Vec.t -> Vec.t

(** [to_dense a] expands to a dense symmetric matrix (tests only). *)
val to_dense : sym -> Mat.t

(** [min_degree a] is a fill-reducing elimination order: [perm.(k)] is
    the original index eliminated k-th.  Greedy minimum degree with
    clique merging; ties broken by smallest index, so the order is a
    pure function of the pattern. *)
val min_degree : sym -> int array

type symbolic
(** The once-per-pattern analysis: permutation, elimination tree and
    the column pointers of the factor [L].  Valid for any matrix with
    the same pattern as the one analysed. *)

(** [symbolic ?order a] runs the symbolic phase on [a]'s pattern using
    [order] (default {!min_degree}).
    @raise Invalid_argument if [order] is not a permutation of
    [0..n-1]. *)
val symbolic : ?order:int array -> sym -> symbolic

(** [factor_nnz s] is the number of nonzeros the factor [L] will
    have (including the diagonal). *)
val factor_nnz : symbolic -> int

type factor

(** [refactor s a ~shift] numerically factors [P·(A + shift·I)·Pᵀ =
    L·Lᵀ] reusing the symbolic analysis [s].  [a] must have the same
    pattern [s] was computed from.  Returns [None] when a pivot is
    non-positive (the matrix plus shift is not positive definite). *)
val refactor : symbolic -> sym -> shift:float -> factor option

(** [factor ?max_shift s a] is {!refactor} wrapped in the same
    progressive diagonal shift policy as {!Cholesky.factor}: shift [0.],
    then [1e-14·‖a‖] growing ×100 up to [max_shift·‖a‖]
    (default [1e-4]).
    @raise Not_positive_definite if no shift in range succeeds. *)
val factor : ?max_shift:float -> symbolic -> sym -> factor

(** [shift f] is the diagonal regularisation that was applied. *)
val shift : factor -> float

(** [solve f b] solves [(A + shift·I)·x = b] through the permuted
    triangular factors. *)
val solve : factor -> Vec.t -> Vec.t
