type t = float array

let create n = Array.make n 0.0
let make n x = Array.make n x
let init = Array.init
let dim = Array.length
let copy = Array.copy
let of_list = Array.of_list
let to_list = Array.to_list

let check_dims name u v =
  if Array.length u <> Array.length v then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)"
                   name (Array.length u) (Array.length v))

let dot u v =
  check_dims "dot" u v;
  let acc = ref 0.0 in
  for i = 0 to Array.length u - 1 do
    acc := !acc +. (u.(i) *. v.(i))
  done;
  !acc

let nrm2 v =
  (* Scaled to avoid overflow on extreme entries. *)
  let scale = ref 0.0 and ssq = ref 1.0 in
  Array.iter
    (fun x ->
      let ax = Float.abs x in
      if ax > 0.0 then
        if !scale < ax then begin
          ssq := 1.0 +. (!ssq *. (!scale /. ax) *. (!scale /. ax));
          scale := ax
        end
        else ssq := !ssq +. ((ax /. !scale) *. (ax /. !scale)))
    v;
  !scale *. sqrt !ssq

let amax v = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 v
let asum v = Array.fold_left (fun acc x -> acc +. Float.abs x) 0.0 v

let scal a v =
  for i = 0 to Array.length v - 1 do
    v.(i) <- a *. v.(i)
  done

let scale a v = Array.map (fun x -> a *. x) v

let axpy a x y =
  check_dims "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let map = Array.map

let map2 f u v =
  check_dims "map2" u v;
  Array.init (Array.length u) (fun i -> f u.(i) v.(i))

let add u v = map2 ( +. ) u v
let sub u v = map2 ( -. ) u v
let neg v = Array.map (fun x -> -.x) v
let mul u v = map2 ( *. ) u v
let div u v = map2 ( /. ) u v
let fill v x = Array.fill v 0 (Array.length v) x

let blit src dst =
  check_dims "blit" src dst;
  Array.blit src 0 dst 0 (Array.length src)

let concat = Array.concat

let slice v ~pos ~len = Array.sub v pos len

let max_elt v =
  if Array.length v = 0 then invalid_arg "Vec.max_elt: empty vector";
  Array.fold_left Float.max v.(0) v

let min_elt v =
  if Array.length v = 0 then invalid_arg "Vec.min_elt: empty vector";
  Array.fold_left Float.min v.(0) v

let equal ~eps u v =
  Array.length u = Array.length v
  && begin
       let ok = ref true in
       for i = 0 to Array.length u - 1 do
         if Float.abs (u.(i) -. v.(i)) > eps then ok := false
       done;
       !ok
     end

let pp ppf v =
  Format.fprintf ppf "[@[<hov>%a@]]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf x -> Format.fprintf ppf "%.6g" x))
    (Array.to_list v)
