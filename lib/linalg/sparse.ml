(* Sparse symmetric Cholesky in the style of CSparse's cs_chol: an
   upper-triangle CSC store, a deterministic minimum-degree ordering,
   a one-shot symbolic phase (elimination tree + column counts), and
   an up-looking numeric refactorisation that is the only part run
   per interior-point iteration. *)

type sym = {
  n : int;
  colptr : int array;  (* n+1 entries *)
  rowind : int array;  (* row of each entry; row <= col, sorted per column *)
  values : float array;
}

exception Not_positive_definite

let create ~n triplets =
  if n < 0 then invalid_arg "Sparse.create: negative dimension";
  let upper =
    List.map
      (fun (i, j, v) ->
        if i < 0 || i >= n || j < 0 || j >= n then
          invalid_arg "Sparse.create: index out of range";
        if i <= j then (j, i, v) else (i, j, v))
      triplets
  in
  let sorted =
    List.sort
      (fun (c1, r1, _) (c2, r2, _) -> if c1 <> c2 then compare c1 c2 else compare r1 r2)
      upper
  in
  (* Merge duplicates, count per column. *)
  let merged =
    List.fold_left
      (fun acc (c, r, v) ->
        match acc with
        | (c', r', v') :: rest when c' = c && r' = r -> (c, r, v +. v') :: rest
        | _ -> (c, r, v) :: acc)
      [] sorted
    |> List.rev
  in
  let nz = List.length merged in
  let colptr = Array.make (n + 1) 0 in
  let rowind = Array.make nz 0 in
  let values = Array.make nz 0.0 in
  List.iteri
    (fun k (c, r, v) ->
      colptr.(c + 1) <- colptr.(c + 1) + 1;
      rowind.(k) <- r;
      values.(k) <- v)
    merged;
  for c = 0 to n - 1 do
    colptr.(c + 1) <- colptr.(c) + colptr.(c + 1)
  done;
  { n; colptr; rowind; values }

let dim a = a.n
let nnz a = a.colptr.(a.n)
let clear a = Array.fill a.values 0 (Array.length a.values) 0.0

(* Binary search for row [i] inside column [j] of the upper triangle. *)
let index a i j =
  let i, j = if i <= j then (i, j) else (j, i) in
  let lo = ref a.colptr.(j) and hi = ref (a.colptr.(j + 1) - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let r = a.rowind.(mid) in
    if r = i then found := mid else if r < i then lo := mid + 1 else hi := mid - 1
  done;
  !found

let add a i j v =
  let k = index a i j in
  if k < 0 then invalid_arg "Sparse.add: entry outside the pattern";
  a.values.(k) <- a.values.(k) +. v

let get a i j =
  let k = index a i j in
  if k < 0 then 0.0 else a.values.(k)

let mul_vec a x =
  if Array.length x <> a.n then invalid_arg "Sparse.mul_vec: dimension";
  let y = Array.make a.n 0.0 in
  for j = 0 to a.n - 1 do
    for p = a.colptr.(j) to a.colptr.(j + 1) - 1 do
      let i = a.rowind.(p) and v = a.values.(p) in
      y.(i) <- y.(i) +. (v *. x.(j));
      if i <> j then y.(j) <- y.(j) +. (v *. x.(i))
    done
  done;
  y

let to_dense a =
  let m = Mat.create a.n a.n in
  for j = 0 to a.n - 1 do
    for p = a.colptr.(j) to a.colptr.(j + 1) - 1 do
      let i = a.rowind.(p) and v = a.values.(p) in
      Mat.set m i j v;
      if i <> j then Mat.set m j i v
    done
  done;
  m

(* Frobenius norm of the full symmetric matrix: off-diagonals count
   twice, matching the scale the dense shift policy uses. *)
let frobenius a =
  let acc = ref 0.0 in
  for j = 0 to a.n - 1 do
    for p = a.colptr.(j) to a.colptr.(j + 1) - 1 do
      let v = a.values.(p) in
      let sq = v *. v in
      acc := !acc +. if a.rowind.(p) = j then sq else 2.0 *. sq
    done
  done;
  sqrt !acc

(* ---- minimum-degree ordering ------------------------------------- *)

(* Greedy minimum degree on the quotient-free (explicit clique merge)
   graph.  Quadratic in the worst case, but the KKT patterns here are
   near-banded and small relative to solve cost.  Determinism matters
   more than constant factors: candidate selection and neighbour
   merges always break ties toward the smallest index. *)
let min_degree a =
  let n = a.n in
  let adj = Array.make n [||] in
  (* Build full (both triangles) adjacency, diagonal excluded. *)
  let deg = Array.make n 0 in
  for j = 0 to n - 1 do
    for p = a.colptr.(j) to a.colptr.(j + 1) - 1 do
      let i = a.rowind.(p) in
      if i <> j then begin
        deg.(i) <- deg.(i) + 1;
        deg.(j) <- deg.(j) + 1
      end
    done
  done;
  let fill = Array.make n 0 in
  Array.iteri (fun v d -> adj.(v) <- Array.make d 0) deg;
  for j = 0 to n - 1 do
    for p = a.colptr.(j) to a.colptr.(j + 1) - 1 do
      let i = a.rowind.(p) in
      if i <> j then begin
        adj.(i).(fill.(i)) <- j;
        fill.(i) <- fill.(i) + 1;
        adj.(j).(fill.(j)) <- i;
        fill.(j) <- fill.(j) + 1
      end
    done
  done;
  let alive = Array.make n true in
  let stamp = Array.make n (-1) in
  let tag = ref 0 in
  let perm = Array.make n 0 in
  let scratch = Array.make n 0 in
  for k = 0 to n - 1 do
    (* Pick the alive vertex of minimum degree, smallest index first. *)
    let best = ref (-1) in
    for v = n - 1 downto 0 do
      if alive.(v) && (!best < 0 || deg.(v) <= deg.(!best)) then best := v
    done;
    let v = !best in
    perm.(k) <- v;
    alive.(v) <- false;
    let nbrs = Array.of_seq (Seq.filter (fun u -> alive.(u)) (Array.to_seq adj.(v))) in
    (* Eliminating [v] turns its alive neighbourhood into a clique. *)
    Array.iter
      (fun u ->
        incr tag;
        let t = !tag in
        stamp.(u) <- t;
        let len = ref 0 in
        Array.iter
          (fun w ->
            if alive.(w) && stamp.(w) <> t then begin
              stamp.(w) <- t;
              scratch.(!len) <- w;
              incr len
            end)
          adj.(u);
        Array.iter
          (fun w ->
            if w <> u && stamp.(w) <> t then begin
              stamp.(w) <- t;
              scratch.(!len) <- w;
              incr len
            end)
          nbrs;
        adj.(u) <- Array.sub scratch 0 !len;
        deg.(u) <- !len)
      nbrs
  done;
  perm

(* ---- symbolic phase ----------------------------------------------- *)

type symbolic = {
  sn : int;
  perm : int array;  (* perm.(k) = original index eliminated k-th *)
  pinv : int array;
  parent : int array;  (* elimination tree on permuted indices *)
  pcolptr : int array;  (* permuted upper-triangle pattern... *)
  prowind : int array;
  psrc : int array;  (* ...with each entry mapped to its value slot in the original matrix *)
  lcolptr : int array;  (* column pointers of the factor L (lower CSC) *)
}

let factor_nnz s = s.lcolptr.(s.sn)

let symbolic ?order a =
  let n = a.n in
  let perm =
    match order with
    | None -> min_degree a
    | Some p ->
      if Array.length p <> n then invalid_arg "Sparse.symbolic: order length";
      let seen = Array.make n false in
      Array.iter
        (fun v ->
          if v < 0 || v >= n || seen.(v) then
            invalid_arg "Sparse.symbolic: order is not a permutation";
          seen.(v) <- true)
        p;
      Array.copy p
  in
  let pinv = Array.make n 0 in
  Array.iteri (fun k v -> pinv.(v) <- k) perm;
  (* Permuted upper-triangle pattern, carrying the source value index
     so refactorisation can read values straight out of the original
     matrix without re-permuting it. *)
  let cols = Array.make n [] in
  for j = 0 to n - 1 do
    for p = a.colptr.(j) to a.colptr.(j + 1) - 1 do
      let i = a.rowind.(p) in
      let pi = pinv.(i) and pj = pinv.(j) in
      let r, c = if pi <= pj then (pi, pj) else (pj, pi) in
      cols.(c) <- (r, p) :: cols.(c)
    done
  done;
  let pcolptr = Array.make (n + 1) 0 in
  Array.iteri (fun c l -> pcolptr.(c + 1) <- List.length l) cols;
  for c = 0 to n - 1 do
    pcolptr.(c + 1) <- pcolptr.(c) + pcolptr.(c + 1)
  done;
  let pnz = pcolptr.(n) in
  let prowind = Array.make pnz 0 and psrc = Array.make pnz 0 in
  (* Fill sorted by row within each column. *)
  Array.iteri
    (fun c l ->
      let sorted = List.sort (fun (r1, _) (r2, _) -> compare r1 r2) l in
      List.iteri
        (fun k (r, p) ->
          prowind.(pcolptr.(c) + k) <- r;
          psrc.(pcolptr.(c) + k) <- p)
        sorted)
    cols;
  (* Elimination tree with ancestor path compression (cs_etree). *)
  let parent = Array.make n (-1) and ancestor = Array.make n (-1) in
  for k = 0 to n - 1 do
    for p = pcolptr.(k) to pcolptr.(k + 1) - 1 do
      let i = ref (prowind.(p)) in
      while !i <> -1 && !i < k do
        let nxt = ancestor.(!i) in
        ancestor.(!i) <- k;
        if nxt = -1 then parent.(!i) <- k;
        i := nxt
      done
    done
  done;
  (* Column counts of L by replaying the row subtrees (cs_ereach
     walks, counting each visited column once per row). *)
  let w = Array.make n (-1) in
  let count = Array.make n 1 (* the diagonal *) in
  for k = 0 to n - 1 do
    w.(k) <- k;
    for p = pcolptr.(k) to pcolptr.(k + 1) - 1 do
      let i = ref (prowind.(p)) in
      while !i < k && w.(!i) <> k do
        count.(!i) <- count.(!i) + 1;
        w.(!i) <- k;
        i := parent.(!i)
      done
    done
  done;
  let lcolptr = Array.make (n + 1) 0 in
  for c = 0 to n - 1 do
    lcolptr.(c + 1) <- lcolptr.(c) + count.(c)
  done;
  { sn = n; perm; pinv; parent; pcolptr; prowind; psrc; lcolptr }

(* ---- numeric phase ------------------------------------------------ *)

type factor = {
  sy : symbolic;
  lrowind : int array;
  lvalues : float array;
  fshift : float;
}

let shift f = f.fshift

(* Up-looking Cholesky (cs_chol): for each row k of L, the nonzero
   pattern is the union of the elimination-tree paths from the entries
   of the permuted column k — computed on the fly — and the values
   come from one sparse triangular solve against the columns already
   built.  By construction the first stored entry of every L column is
   its diagonal. *)
let refactor sy a ~shift =
  let n = sy.sn in
  if a.n <> n then invalid_arg "Sparse.refactor: dimension mismatch";
  if Array.length a.values < (if Array.length sy.psrc = 0 then 0 else 1 + Array.fold_left max 0 sy.psrc)
  then invalid_arg "Sparse.refactor: pattern mismatch";
  let lnz = sy.lcolptr.(n) in
  let lrowind = Array.make lnz 0 and lvalues = Array.make lnz 0.0 in
  let next = Array.sub sy.lcolptr 0 n in
  let x = Array.make n 0.0 in
  let w = Array.make n (-1) in
  let stack = Array.make n 0 in
  let s = Array.make n 0 in
  let ok = ref true in
  (try
     for k = 0 to n - 1 do
       (* Scatter column k of the permuted matrix and collect the
          reach of its entries through the elimination tree. *)
       let top = ref n in
       w.(k) <- k;
       x.(k) <- 0.0;
       for p = sy.pcolptr.(k) to sy.pcolptr.(k + 1) - 1 do
         let i = sy.prowind.(p) in
         x.(i) <- x.(i) +. a.values.(sy.psrc.(p));
         let len = ref 0 in
         let j = ref i in
         while w.(!j) <> k do
           stack.(!len) <- !j;
           incr len;
           w.(!j) <- k;
           j := sy.parent.(!j)
         done;
         while !len > 0 do
           decr len;
           decr top;
           s.(!top) <- stack.(!len)
         done
       done;
       let d = ref (x.(k) +. shift) in
       x.(k) <- 0.0;
       (* Sparse triangular solve in topological order. *)
       for t = !top to n - 1 do
         let i = s.(t) in
         let lki = x.(i) /. lvalues.(sy.lcolptr.(i)) in
         x.(i) <- 0.0;
         for p = sy.lcolptr.(i) + 1 to next.(i) - 1 do
           x.(lrowind.(p)) <- x.(lrowind.(p)) -. (lvalues.(p) *. lki)
         done;
         d := !d -. (lki *. lki);
         let p = next.(i) in
         next.(i) <- p + 1;
         lrowind.(p) <- k;
         lvalues.(p) <- lki
       done;
       if (not (Float.is_finite !d)) || !d <= 0.0 then begin
         ok := false;
         raise Exit
       end;
       let p = next.(k) in
       next.(k) <- p + 1;
       lrowind.(p) <- k;
       lvalues.(p) <- sqrt !d
     done
   with Exit -> ());
  if !ok then Some { sy; lrowind; lvalues; fshift = shift } else None

let factor ?(max_shift = 1e-4) sy a =
  let scale =
    let f = frobenius a in
    if f > 0.0 then f else 1.0
  in
  let rec attempt shift =
    match refactor sy a ~shift with
    | Some f -> f
    | None ->
      let next = if shift = 0.0 then 1e-14 *. scale else shift *. 100.0 in
      if next > max_shift *. scale then raise Not_positive_definite
      else attempt next
  in
  attempt 0.0

let solve f b =
  let sy = f.sy in
  let n = sy.sn in
  if Array.length b <> n then invalid_arg "Sparse.solve: dimension";
  let y = Array.init n (fun i -> b.(sy.perm.(i))) in
  for j = 0 to n - 1 do
    let p0 = sy.lcolptr.(j) in
    let yj = y.(j) /. f.lvalues.(p0) in
    y.(j) <- yj;
    for p = p0 + 1 to sy.lcolptr.(j + 1) - 1 do
      y.(f.lrowind.(p)) <- y.(f.lrowind.(p)) -. (f.lvalues.(p) *. yj)
    done
  done;
  for j = n - 1 downto 0 do
    let p0 = sy.lcolptr.(j) in
    let acc = ref y.(j) in
    for p = p0 + 1 to sy.lcolptr.(j + 1) - 1 do
      acc := !acc -. (f.lvalues.(p) *. y.(f.lrowind.(p)))
    done;
    y.(j) <- !acc /. f.lvalues.(p0)
  done;
  let out = Array.make n 0.0 in
  for i = 0 to n - 1 do
    out.(sy.perm.(i)) <- y.(i)
  done;
  out
