(** Dense row-major matrices of floats.

    Dimensions are validated on every operation; mismatches raise
    [Invalid_argument].  The interior-point solver only needs matrices
    with a few thousand entries, so all storage is dense. *)

type t

(** [create m n] is the [m]×[n] zero matrix. *)
val create : int -> int -> t

(** [init m n f] is the [m]×[n] matrix with entry [(i, j)] equal to
    [f i j]. *)
val init : int -> int -> (int -> int -> float) -> t

(** [identity n] is the [n]×[n] identity. *)
val identity : int -> t

(** [of_rows rows] builds a matrix from row vectors (all of equal
    dimension). *)
val of_rows : float array list -> t

(** [of_arrays a] builds a matrix from an array of rows. *)
val of_arrays : float array array -> t

(** [rows a] is the number of rows. *)
val rows : t -> int

(** [cols a] is the number of columns. *)
val cols : t -> int

(** [get a i j] is entry [(i, j)]. *)
val get : t -> int -> int -> float

(** [set a i j x] writes entry [(i, j)]. *)
val set : t -> int -> int -> float -> unit

(** [update a i j f] replaces entry [(i, j)] by [f] of itself. *)
val update : t -> int -> int -> (float -> float) -> unit

(** [copy a] is a deep copy. *)
val copy : t -> t

(** [row a i] is a fresh copy of row [i]. *)
val row : t -> int -> Vec.t

(** [col a j] is a fresh copy of column [j]. *)
val col : t -> int -> Vec.t

(** [transpose a] is a fresh transpose. *)
val transpose : t -> t

(** [mul_vec a x] is the matrix–vector product [A·x]. *)
val mul_vec : t -> Vec.t -> Vec.t

(** [mul_tvec a x] is the product with the transpose, [Aᵀ·x]. *)
val mul_tvec : t -> Vec.t -> Vec.t

(** [mul a b] is the matrix product [A·B]. *)
val mul : t -> t -> t

(** [add a b] is the fresh sum. *)
val add : t -> t -> t

(** [sub a b] is the fresh difference. *)
val sub : t -> t -> t

(** [scale k a] is the fresh scalar multiple [k·A]. *)
val scale : float -> t -> t

(** [gram a] is [Aᵀ·A], computed symmetrically. *)
val gram : t -> t

(** [gram_weighted a w] is [Aᵀ·diag(w)·A] for a weight vector [w] of
    dimension [rows a]. *)
val gram_weighted : t -> Vec.t -> t

(** [frobenius a] is the Frobenius norm. *)
val frobenius : t -> float

(** [equal ~eps a b] is component-wise equality within [eps]. *)
val equal : eps:float -> t -> t -> bool

(** [pp ppf a] prints the matrix row by row. *)
val pp : Format.formatter -> t -> unit
