(** Cholesky and LDLᵀ factorisations of symmetric matrices, and the
    triangular solves built on them.

    These are the only factorisations the interior-point solver needs:
    the KKT normal equations [Gᵀ·W⁻¹·W⁻ᵀ·G] are symmetric positive
    definite away from the boundary of the cone, and become nearly
    singular close to the optimum, which [factor] handles with a
    progressive diagonal shift. *)

type factor = {
  l : Mat.t;  (** lower-triangular Cholesky factor *)
  shift : float;
      (** diagonal regularisation that was added to achieve positive
          definiteness; [0.] when the matrix was PD as given *)
}

exception Not_positive_definite

(** [factor ?max_shift a] computes a lower-triangular [l] with
    [l·lᵀ = a + shift·I].  The shift starts at [0.] and is increased
    geometrically from [1e-14·‖a‖] up to [max_shift·‖a‖]
    (default [1e-4]) until the factorisation succeeds.
    @raise Not_positive_definite if no shift in range succeeds.
    @raise Invalid_argument if [a] is not square. *)
val factor : ?max_shift:float -> Mat.t -> factor

(** [solve f b] solves [(l·lᵀ)·x = b] by forward and back substitution. *)
val solve : factor -> Vec.t -> Vec.t

(** [solve_lower l b] solves the lower-triangular system [l·x = b]. *)
val solve_lower : Mat.t -> Vec.t -> Vec.t

(** [solve_upper_t l b] solves [lᵀ·x = b] for lower-triangular [l]. *)
val solve_upper_t : Mat.t -> Vec.t -> Vec.t

(** [ldlt a] computes unit lower-triangular [l] and diagonal [d] with
    [l·diag(d)·lᵀ = a], without pivoting.  Works for quasi-definite
    matrices; raises [Not_positive_definite] on a zero pivot. *)
val ldlt : Mat.t -> Mat.t * Vec.t

(** [ldlt_solve (l, d) b] solves [l·diag(d)·lᵀ·x = b]. *)
val ldlt_solve : Mat.t * Vec.t -> Vec.t -> Vec.t
