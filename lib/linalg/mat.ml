type t = { m : int; n : int; data : float array (* row-major *) }

let create m n =
  if m < 0 || n < 0 then invalid_arg "Mat.create: negative dimension";
  { m; n; data = Array.make (m * n) 0.0 }

let init m n f =
  let a = create m n in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      a.data.((i * n) + j) <- f i j
    done
  done;
  a

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let of_arrays arr =
  let m = Array.length arr in
  if m = 0 then create 0 0
  else begin
    let n = Array.length arr.(0) in
    Array.iter
      (fun r ->
        if Array.length r <> n then invalid_arg "Mat.of_arrays: ragged rows")
      arr;
    init m n (fun i j -> arr.(i).(j))
  end

let of_rows rows = of_arrays (Array.of_list rows)
let rows a = a.m
let cols a = a.n

let get a i j =
  if i < 0 || i >= a.m || j < 0 || j >= a.n then
    invalid_arg "Mat.get: index out of bounds";
  a.data.((i * a.n) + j)

let set a i j x =
  if i < 0 || i >= a.m || j < 0 || j >= a.n then
    invalid_arg "Mat.set: index out of bounds";
  a.data.((i * a.n) + j) <- x

let update a i j f = set a i j (f (get a i j))
let copy a = { a with data = Array.copy a.data }
let row a i = Array.init a.n (fun j -> get a i j)
let col a j = Array.init a.m (fun i -> get a i j)
let transpose a = init a.n a.m (fun i j -> get a j i)

let mul_vec a x =
  if Vec.dim x <> a.n then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init a.m (fun i ->
      let acc = ref 0.0 in
      let base = i * a.n in
      for j = 0 to a.n - 1 do
        acc := !acc +. (a.data.(base + j) *. x.(j))
      done;
      !acc)

let mul_tvec a x =
  if Vec.dim x <> a.m then invalid_arg "Mat.mul_tvec: dimension mismatch";
  let y = Array.make a.n 0.0 in
  for i = 0 to a.m - 1 do
    let base = i * a.n in
    let xi = x.(i) in
    if xi <> 0.0 then
      for j = 0 to a.n - 1 do
        y.(j) <- y.(j) +. (a.data.(base + j) *. xi)
      done
  done;
  y

let mul a b =
  if a.n <> b.m then invalid_arg "Mat.mul: dimension mismatch";
  let c = create a.m b.n in
  for i = 0 to a.m - 1 do
    for k = 0 to a.n - 1 do
      let aik = a.data.((i * a.n) + k) in
      if aik <> 0.0 then begin
        let bbase = k * b.n and cbase = i * b.n in
        for j = 0 to b.n - 1 do
          c.data.(cbase + j) <- c.data.(cbase + j) +. (aik *. b.data.(bbase + j))
        done
      end
    done
  done;
  c

let map2 name f a b =
  if a.m <> b.m || a.n <> b.n then
    invalid_arg (Printf.sprintf "Mat.%s: dimension mismatch" name);
  { a with data = Array.init (a.m * a.n) (fun k -> f a.data.(k) b.data.(k)) }

let add a b = map2 "add" ( +. ) a b
let sub a b = map2 "sub" ( -. ) a b
let scale k a = { a with data = Array.map (fun x -> k *. x) a.data }

let gram_weighted a w =
  if Vec.dim w <> a.m then invalid_arg "Mat.gram_weighted: weight dimension";
  let c = create a.n a.n in
  for k = 0 to a.m - 1 do
    let base = k * a.n in
    let wk = w.(k) in
    if wk <> 0.0 then
      for i = 0 to a.n - 1 do
        let aki = a.data.(base + i) in
        if aki <> 0.0 then begin
          let f = wk *. aki in
          let cbase = i * a.n in
          for j = i to a.n - 1 do
            c.data.(cbase + j) <- c.data.(cbase + j) +. (f *. a.data.(base + j))
          done
        end
      done
  done;
  (* Mirror the upper triangle. *)
  for i = 0 to a.n - 1 do
    for j = i + 1 to a.n - 1 do
      c.data.((j * a.n) + i) <- c.data.((i * a.n) + j)
    done
  done;
  c

let gram a = gram_weighted a (Array.make a.m 1.0)

let frobenius a =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 a.data)

let equal ~eps a b =
  a.m = b.m && a.n = b.n
  && begin
       let ok = ref true in
       Array.iteri
         (fun k x -> if Float.abs (x -. b.data.(k)) > eps then ok := false)
         a.data;
       !ok
     end

let pp ppf a =
  Format.fprintf ppf "@[<v>";
  for i = 0 to a.m - 1 do
    Format.fprintf ppf "%a" Vec.pp (row a i);
    if i < a.m - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
