module Config = Taskgraph.Config
module Sim = Tdm_sim.Sim
module Durability = Budgetbuf.Durability

(* Simulator-in-the-loop buffer tightening (docs/tightening.md).

   The dataflow model is conservative: a mapping admitting a PAS with
   period µ simulates at a steady-state period ≤ µ, so the analytic
   capacities usually overshoot what the platform needs.  Per buffer we
   run a dichotomy between the exact lower bound max(1, ι) and the
   analytic capacity, with [Sim.run] + steady-state detection as the
   feasibility oracle.  Feasibility is monotone in capacity (budget
   schedulers are temporally monotone: more empty space can only let
   the producer start earlier), so binary search is sound.

   Determinism contract: each buffer's search probes candidate
   configurations built from the *analytic* capacities plus one
   overridden buffer, so per-buffer results are independent of search
   order — bit-identical across [--jobs 1] / [--jobs 4] and across
   kill + resume.  The combined minimum is then re-simulated once; if
   the combination misses the target (per-buffer minima need not
   compose), a sequential repair pass re-tightens each buffer against
   the already-accepted prefix, which maintains joint feasibility by
   construction and is equally deterministic.  The repair pass may
   only trust the *analytic* capacity as its unprobed upper bound (the
   baseline high waters were measured against the unmodified analytic
   configuration, which no longer exists once earlier buffers have
   been tightened), and the final repaired configuration is
   re-simulated once, falling back to the certified analytic
   capacities on any disagreement. *)

type outcome = {
  buffer_id : int;
  analytic : int;  (** capacity in the certified analytic mapping *)
  floor : int;  (** exact SRDF lower bound max(1, ι) *)
  tightened : int;  (** accepted capacity, [floor ≤ tightened ≤ analytic] *)
  probes : int;  (** simulator runs this buffer's search spent *)
  skipped : string option;
      (** [Some reason] when the search did not finish (per-candidate
          deadline, global deadline, cancellation, crash) and the
          buffer fell back to its analytic capacity *)
}

type t = {
  mapped : Config.mapped;
  outcomes : outcome list;  (** dense buffer-id order *)
  analytic_containers : int;
  tightened_containers : int;
  probes : int;  (** total simulator runs, joint checks included *)
  repaired : bool;
      (** the independent minima missed the target jointly and the
          sequential repair pass produced the final capacities *)
  progress : Durable.Sweep.progress;
}

(* The oracle threshold.  The measured mean period carries an O(1/n)
   startup bias (the completion curve approaches its steady slope from
   below), so even a certified mapping measures a few percent above µ
   at short horizons.  Comparing a candidate against µ alone would
   therefore reject sound capacities; the differential threshold is
   max(µ, the analytic baseline's own measured period) — same
   simulator, same horizon, same bias — with a relative guard for
   float noise.  A candidate passes iff it is no slower than whichever
   of the target and the analytic mapping is the weaker bar. *)
let threshold mu = (mu *. (1.0 +. 1e-9)) +. 1e-12

(* The repo-wide hard margin (see [Mapping.sim_hard_failure]): a
   baseline this far past µ is broken, not transient. *)
let hard_margin = 1.5

let thresholds cfg (baseline : Sim.report) =
  List.map
    (fun g ->
      ( g,
        threshold
          (Float.max (Config.period cfg g) (baseline.Sim.graph_period g)) ))
    (Config.graphs cfg)

(* Graph handles are dense ids, valid across [Config.copy] clones, so
   thresholds computed on the original config apply to any probe's
   report. *)
let feasible thrs (report : Sim.report) =
  List.for_all (fun (g, thr) -> report.Sim.graph_period g <= thr) thrs

(* ---- journal codec (docs/formats.md) ----------------------------- *)

let encode_outcome o =
  match o.skipped with
  | Some _ -> None (* not a final verdict: a resume retries the buffer *)
  | None ->
    Some
      (Printf.sprintf "ok %d %d %d %d" o.analytic o.floor o.tightened o.probes)

let decode_outcome ~buffer_id ~analytic ~floor payload =
  match
    let ib = Scanf.Scanning.from_string payload in
    if Durability.scan_token ib <> "ok" then None
    else begin
      let a = Durability.scan_int ib in
      let f = Durability.scan_int ib in
      let t = Durability.scan_int ib in
      let p = Durability.scan_int ib in
      (* A record for different bounds (changed config, bank granule
         fingerprint collision) is discarded and the buffer re-solved. *)
      if a <> analytic || f <> floor || t < floor || t > analytic || p < 0 then
        None
      else
        Some
          {
            buffer_id;
            analytic;
            floor;
            tightened = t;
            probes = p;
            skipped = None;
          }
    end
  with
  | v -> v
  | exception (Scanf.Scan_failure _ | Failure _ | End_of_file | Not_found) ->
    None

(* ---- the engine -------------------------------------------------- *)

let run ?pool ?journal ?deadline ?candidate_deadline ?cancel ?obs ?on_progress
    ?(iterations = 64) ?(bank = 1) cfg (mapped : Config.mapped) =
  if bank < 1 then invalid_arg "Tighten.run: bank granule must be >= 1";
  if iterations < 4 then invalid_arg "Tighten.run: iterations must be >= 4";
  let deadline = Option.value deadline ~default:Durable.Deadline.none in
  let buffers = Config.all_buffers cfg in
  let n = List.length buffers in
  let analytic_caps = Array.make (Int.max n 1) 1 in
  List.iter
    (fun b -> analytic_caps.(Config.buffer_id b) <- mapped.Config.capacity b)
    buffers;
  let mapped_with caps =
    {
      Config.budget = mapped.Config.budget;
      capacity = (fun b -> caps.(Config.buffer_id b));
    }
  in
  let simulate local_cfg caps = Sim.run local_cfg (mapped_with caps) ~iterations () in
  (* Baseline: the analytic mapping itself, which also yields the
     per-buffer high waters seeding each search. *)
  match simulate cfg analytic_caps with
  | Error e -> Error (Printf.sprintf "analytic mapping does not simulate: %s" e)
  | Ok baseline ->
    if
      List.exists
        (fun g ->
          baseline.Sim.graph_period g
          > hard_margin *. Config.period cfg g)
        (Config.graphs cfg)
    then
      Error
        "analytic mapping misses its throughput target in simulation; \
         nothing to tighten against"
    else begin
      let thrs = thresholds cfg baseline in
      let probes_extra = ref 1 (* the baseline run *) in
      let floor_of b = Int.max 1 (Config.initial_tokens cfg b) in
      let per_candidate () =
        match candidate_deadline with
        | None -> deadline
        | Some s -> Durable.Deadline.combine deadline (Durable.Deadline.after s)
      in
      (* Search one buffer: dichotomy over bank levels k with candidate
         capacity min(hi, k·bank).  [hi] is accepted without a probe,
         so the caller must pass a bound that is feasible against
         whatever configuration [probe] tests: phase 1 passes
         min(analytic, full-run high water) — capping a buffer at a
         level the baseline trace never exceeded replays that trace
         verbatim — while the repair pass passes the analytic capacity
         itself, feasible by the joint invariant.  [seeds] are probed
         before bisecting, in order: a hit halves the interval
         immediately. *)
      let search_buffer ~probe ~deadline ~on_probe ~hi ~seeds buffer_id =
        let b = Config.buffer_of_id cfg buffer_id in
        let analytic = analytic_caps.(buffer_id) in
        let floor = floor_of b in
        let level c = (c + bank - 1) / bank in
        let cap_of k = Int.min hi (k * bank) in
        let probes = ref 0 in
        let skipped = ref None in
        let try_cap cap =
          if Durable.Deadline.expired deadline then begin
            skipped := Some "timed out";
            false
          end
          else begin
            incr probes;
            let ok = probe b cap in
            on_probe b cap ok;
            ok
          end
        in
        let lo_k = ref (level floor) and hi_k = ref (level hi) in
        List.iter
          (fun s ->
            let s = Int.min hi (Int.max floor s) in
            if level s < !hi_k && !skipped = None then begin
              if try_cap (cap_of (level s)) then hi_k := level s
              else lo_k := Int.max !lo_k (level s + 1)
            end)
          seeds;
        while !lo_k < !hi_k && !skipped = None do
          let mid = (!lo_k + !hi_k) / 2 in
          if try_cap (cap_of mid) then hi_k := mid else lo_k := mid + 1
        done;
        match !skipped with
        | Some reason ->
          {
            buffer_id;
            analytic;
            floor;
            tightened = analytic;
            probes = !probes;
            skipped = Some reason;
          }
        | None ->
          {
            buffer_id;
            analytic;
            floor;
            tightened = cap_of !hi_k;
            probes = !probes;
            skipped = None;
          }
      in
      let emit_probe b cap ok =
        match obs with
        | None -> ()
        | Some o ->
          Obs.Ctx.emit o
            (Obs.Trace.Tighten_probe
               { buffer = Config.buffer_name cfg b; capacity = cap; feasible = ok })
      in
      let emit_verdict o_ =
        match obs with
        | None -> ()
        | Some o -> (
          Obs.Ctx.emit o
            (Obs.Trace.Candidate
               {
                 index = o_.buffer_id;
                 verdict =
                   (match o_.skipped with None -> "ok" | Some r -> r);
               });
          match o_.skipped with
          | Some _ -> ()
          | None ->
            let b = Config.buffer_of_id cfg o_.buffer_id in
            if o_.tightened < o_.analytic then
              Obs.Ctx.emit o
                (Obs.Trace.Tighten_accept
                   {
                     buffer = Config.buffer_name cfg b;
                     capacity = o_.tightened;
                     saved = o_.analytic - o_.tightened;
                   })
            else
              Obs.Ctx.emit o
                (Obs.Trace.Tighten_reject
                   { buffer = Config.buffer_name cfg b; capacity = o_.analytic }))
      in
      (* Phase 1: independent per-buffer searches, fanned out on the
         pool, journaled per buffer.  Probes clone the config so
         concurrent searches never share mutable state. *)
      let solve_buffer index =
        match
          let local = Config.copy cfg in
          let probe b cap =
            let caps = Array.copy analytic_caps in
            caps.(Config.buffer_id b) <- cap;
            match simulate local caps with
            | Error _ -> false
            | Ok report -> feasible thrs report
          in
          let b = Config.buffer_of_id cfg index in
          let hw =
            Int.min analytic_caps.(index)
              (Int.max (floor_of b) (Sim.(baseline.buffer_high_water) b))
          in
          search_buffer ~probe ~deadline:(per_candidate ())
            ~on_probe:emit_probe ~hi:hw
            ~seeds:[ Sim.(baseline.buffer_high_water_steady) b ]
            index
        with
        | o ->
          emit_verdict o;
          o
        | exception e ->
          let b = Config.buffer_of_id cfg index in
          let o =
            {
              buffer_id = index;
              analytic = analytic_caps.(index);
              floor = floor_of b;
              tightened = analytic_caps.(index);
              probes = 0;
              skipped = Some ("error: " ^ Printexc.to_string e);
            }
          in
          emit_verdict o;
          o
      in
      let results, progress =
        Durable.Sweep.run ?pool ?journal ?obs ~deadline ?cancel
          ~encode:encode_outcome
          ~decode:(fun i payload ->
            decode_outcome ~buffer_id:i ~analytic:analytic_caps.(i)
              ~floor:(floor_of (Config.buffer_of_id cfg i))
              payload)
          ~n solve_buffer
      in
      (match on_progress with None -> () | Some f -> f progress);
      let outcomes =
        Array.to_list
          (Array.mapi
             (fun i slot ->
               match slot with
               | Some o -> o
               | None ->
                 (* abandoned to the global deadline or cancellation *)
                 {
                   buffer_id = i;
                   analytic = analytic_caps.(i);
                   floor = floor_of (Config.buffer_of_id cfg i);
                   tightened = analytic_caps.(i);
                   probes = 0;
                   skipped = Some "not run";
                 })
             results)
      in
      (* Phase 2: per-buffer minima need not compose — verify the
         combination once, and on a miss fall back to a sequential
         pass that re-tightens each buffer against the accepted prefix
         (every probe then tests the true joint configuration, so the
         invariant "current capacities are feasible" holds throughout). *)
      let proposed = Array.copy analytic_caps in
      List.iter (fun o -> proposed.(o.buffer_id) <- o.tightened) outcomes;
      let changed = proposed <> analytic_caps in
      let joint_ok =
        (not changed)
        ||
        begin
          incr probes_extra;
          match simulate cfg proposed with
          | Error _ -> false
          | Ok report -> feasible thrs report
        end
      in
      let final_caps, outcomes, repaired =
        if joint_ok then (proposed, outcomes, false)
        else begin
          let current = Array.copy analytic_caps in
          let outcomes =
            List.map
              (fun o ->
                if o.skipped <> None then o
                else begin
                  let probe b cap =
                    let caps = Array.copy current in
                    caps.(Config.buffer_id b) <- cap;
                    incr probes_extra;
                    match simulate cfg caps with
                    | Error _ -> false
                    | Ok report -> feasible thrs report
                  in
                  (* The unprobed upper bound here must be the analytic
                     capacity: the invariant "[current] is feasible"
                     covers this buffer at its analytic value, whereas
                     the baseline high water was measured against the
                     unmodified analytic configuration and need not be
                     feasible jointly with the tightened prefix.  Both
                     high waters are still probed as seeds. *)
                  let b = Config.buffer_of_id cfg o.buffer_id in
                  let o' =
                    search_buffer ~probe ~deadline:(per_candidate ())
                      ~on_probe:emit_probe ~hi:o.analytic
                      ~seeds:
                        [
                          Sim.(baseline.buffer_high_water_steady) b;
                          Sim.(baseline.buffer_high_water) b;
                        ]
                      o.buffer_id
                  in
                  (* count repair probes globally, not per buffer *)
                  let o' = { o' with probes = o.probes } in
                  current.(o.buffer_id) <- o'.tightened;
                  o'
                end)
              outcomes
          in
          (* Belt and braces: every accepted capacity above was either
             probed against the true joint configuration or kept at its
             analytic value, so [current] is feasible by construction —
             but the output is announced as simulation-backed, so
             verify the joint configuration once more and fall back to
             the certified analytic capacities if the check disagrees. *)
          incr probes_extra;
          let repaired_ok =
            match simulate cfg current with
            | Error _ -> false
            | Ok report -> feasible thrs report
          in
          if repaired_ok then (current, outcomes, true)
          else
            ( Array.copy analytic_caps,
              List.map
                (fun o ->
                  if o.skipped <> None then o
                  else
                    {
                      o with
                      tightened = o.analytic;
                      skipped = Some "joint repair failed";
                    })
                outcomes,
              true )
        end
      in
      let total caps =
        List.fold_left (fun acc b -> acc + caps.(Config.buffer_id b)) 0 buffers
      in
      Ok
        {
          mapped = mapped_with final_caps;
          outcomes;
          analytic_containers = total analytic_caps;
          tightened_containers = total final_caps;
          probes =
            List.fold_left
              (fun acc (o : outcome) -> acc + o.probes)
              !probes_extra outcomes;
          repaired;
          progress;
        }
    end
