(** Simulator-in-the-loop buffer tightening.

    The paper's dataflow model is conservative: a mapping that admits
    a periodic admissible schedule with period µ is {e guaranteed} to
    simulate at a steady-state period ≤ µ, which means the analytic
    buffer capacities usually overshoot what the platform needs.
    [run] takes a certified analytic mapping and searches, per buffer,
    for the smallest capacity the discrete-event simulator
    ({!Tdm_sim.Sim}) still accepts — a dichotomy between the exact
    SRDF lower bound max(1, ι) and the analytic capacity, sound
    because feasibility is monotone in capacity (budget schedulers are
    temporally monotone).

    The caller keeps the analytic mapping and its exact certificate:
    the tightened capacities are simulation-backed, the analytic ones
    machine-checked — the certificate is the fallback story, not a
    property of the tightened point.  See docs/tightening.md. *)

type outcome = {
  buffer_id : int;  (** dense buffer id ({!Taskgraph.Config.buffer_id}) *)
  analytic : int;  (** capacity in the certified analytic mapping *)
  floor : int;  (** exact SRDF lower bound max(1, ι) *)
  tightened : int;  (** accepted capacity, [floor ≤ tightened ≤ analytic] *)
  probes : int;  (** simulator runs this buffer's search spent *)
  skipped : string option;
      (** [Some reason] ("timed out", "not run", "error: ...") when
          the search did not finish and the buffer kept its analytic
          capacity; such buffers are not journaled, so a resume
          retries them *)
}

type t = {
  mapped : Taskgraph.Config.mapped;
      (** analytic budgets, tightened capacities *)
  outcomes : outcome list;  (** dense buffer-id order *)
  analytic_containers : int;  (** Σ analytic capacities *)
  tightened_containers : int;  (** Σ tightened capacities *)
  probes : int;  (** total simulator runs, baseline and joint checks
                     included *)
  repaired : bool;
      (** the independent per-buffer minima missed the target when
          combined, and the (equally deterministic) sequential repair
          pass produced the final capacities instead *)
  progress : Durable.Sweep.progress;
}

(** [run cfg mapped] tightens the buffer capacities of [mapped]
    (budgets are never touched).

    The harness is the usual one: [pool] fans the per-buffer searches
    out across domains, [journal] makes them resumable (one record per
    finished buffer; see docs/formats.md), [deadline] /
    [candidate_deadline] bound the whole run and each buffer's search,
    [cancel] stops between probes, [obs] receives
    [tighten_probe]/[tighten_accept]/[tighten_reject] plus the
    standard sweep events.  [iterations] (default 64) is the
    simulation length of every probe; [bank] (default 1) is the
    banked-memory granule: the search only explores capacities that
    cross a bank boundary, i.e. multiples of [bank] clamped to the
    known-feasible upper bound.

    Results are bit-identical across pool sizes and across
    kill+resume: every phase-1 probe overrides exactly one buffer of
    the {e analytic} capacities, so no search depends on another's
    outcome; the joint verification and (rare) sequential repair pass
    depend only on phase-1 results.  The repair pass honours the same
    per-buffer [candidate_deadline] as phase 1, probes every accepted
    capacity against the true joint configuration (only the analytic
    capacity, feasible by invariant, is trusted unprobed), and its
    result is re-simulated once — on any disagreement the repaired
    buffers fall back to their analytic capacities
    ([skipped = Some "joint repair failed"]).

    @return [Error _] when the analytic mapping itself fails to
    simulate at its target — there is nothing sound to tighten
    against.
    @raise Invalid_argument if [bank < 1] or [iterations < 4]. *)
val run :
  ?pool:Parallel.Pool.t ->
  ?journal:Durable.Journal.t ->
  ?deadline:Durable.Deadline.t ->
  ?candidate_deadline:float ->
  ?cancel:(unit -> bool) ->
  ?obs:Obs.Ctx.t ->
  ?on_progress:(Durable.Sweep.progress -> unit) ->
  ?iterations:int ->
  ?bank:int ->
  Taskgraph.Config.t ->
  Taskgraph.Config.mapped ->
  (t, string) Stdlib.result
