(** Deterministic splitmix64 pseudo-random generator.

    Workload generation must be reproducible across runs and
    independent of the global [Random] state, so benches and tests can
    reference "chain #17 of seed 42" and get the same instance
    forever. *)

type t

(** [create seed] makes a generator; equal seeds yield equal streams. *)
val create : int64 -> t

(** [int t ~bound] is uniform in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> bound:int -> int

(** [float t ~lo ~hi] is uniform in [lo, hi).
    @raise Invalid_argument if [hi <= lo]. *)
val float : t -> lo:float -> hi:float -> float

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [split t] derives an independent generator (for nested structures
    whose sizes must not perturb sibling streams). *)
val split : t -> t
