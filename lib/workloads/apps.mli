(** Streaming applications from the multimedia-mapping literature,
    modelled as single-rate task graphs at the granularity the paper
    uses (tasks = pipeline stages, Mcycle-scale worst-case execution
    times).  Numbers are representative of the published models (H.263
    and MP3 appear throughout the SDF mapping literature, e.g. Stuijk
    et al. DAC'07 — the paper's reference [8]); they are documented
    approximations, not measurements, and serve as realistic-shape
    instances for the benches.

    All builders mirror the naming conventions of {!Gen}: processors
    ["p0"…], one memory ["m0"], graph name as given below. *)

(** [h263_decoder ()] — graph ["h263"]: variable-length decoding →
    inverse quantisation → IDCT → motion compensation, a 4-stage chain
    with a dominant IDCT stage; period one QCIF frame. *)
val h263_decoder : unit -> Taskgraph.Config.t

(** [mp3_playback ()] — graph ["mp3"]: Huffman decoding → requantise →
    stereo/alias processing → IMDCT → synthesis filterbank, a 5-stage
    chain; period one granule pair. *)
val mp3_playback : unit -> Taskgraph.Config.t

(** [modem ()] — graph ["modem"]: the classic bidirectional-ish modem
    pipeline reduced to its forward chain with a fork for the equaliser
    feedback path (6 tasks, one split-join). *)
val modem : unit -> Taskgraph.Config.t

(** [car_radio ()] — two jobs sharing two processors: an audio
    decoder chain (graph ["audio"]) and a traffic-announcement decoder
    (graph ["ta"]), the paper's car-entertainment motivation. *)
val car_radio : unit -> Taskgraph.Config.t

(** [all] — the named applications, for table-driven benches. *)
val all : (string * (unit -> Taskgraph.Config.t)) list
