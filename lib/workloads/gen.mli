(** Workload generators.

    The paper evaluates on two hand-built task graphs; these builders
    reconstruct both exactly and generalise them so the benches can
    also measure scaling.  Naming is stable and documented so callers
    can retrieve handles with [Config.find_task]/[find_buffer]:
    tasks are ["w0"], ["w1"], …; buffers ["b0"], ["b1"], …; processors
    ["p0"], …; the single memory is ["m0"]; graphs are ["t0"], ["t1"],
    … (or ["t1"]/["t2"] for the paper's instances with their original
    task names ["wa"], ["wb"], ["wc"]). *)

(** [paper_t1 ()] is the producer–consumer graph of the paper's first
    experiment: tasks [wa], [wb] on processors [p1], [p2]
    (̺ = 40 Mcycles each), χ = 1 Mcycle, µ = 10 Mcycles, unit
    containers, buffer [bab], budget-dominant weights (a = 1,
    b = 0.001). *)
val paper_t1 : unit -> Taskgraph.Config.t

(** [paper_t2 ()] extends T1 with task [wc] on processor [p3] and
    buffer [bbc], as in the paper's second experiment. *)
val paper_t2 : unit -> Taskgraph.Config.t

(** [chain ~n ()] is a pipeline of [n] tasks [w0 → w1 → … → w(n−1)],
    one per processor, with the T1 parameters (̺ = 40, χ = 1, µ = 10)
    unless overridden.  [shared_procs] (default [n]) maps tasks onto
    that many processors round-robin, exercising Constraint (9) with
    more than one task per processor.
    @raise Invalid_argument if [n < 2]. *)
val chain :
  n:int ->
  ?replenishment:float ->
  ?wcet:float ->
  ?period:float ->
  ?budget_weight:float ->
  ?buffer_weight:float ->
  ?shared_procs:int ->
  unit ->
  Taskgraph.Config.t

(** [split_join ~branches ()] is a fork–join graph: source [w0] feeds
    [branches] parallel tasks which feed sink [w(branches+1)]; every
    task on its own processor, T1 parameters.
    @raise Invalid_argument if [branches < 1]. *)
val split_join :
  branches:int ->
  ?replenishment:float ->
  ?wcet:float ->
  ?period:float ->
  unit ->
  Taskgraph.Config.t

(** [ring ~n ~initial ()] is a directed cycle of [n] tasks where the
    closing buffer carries [initial] initially-filled containers
    (pipelining depth of the feedback loop).
    @raise Invalid_argument if [n < 2] or [initial < 1]. *)
val ring :
  n:int ->
  initial:int ->
  ?replenishment:float ->
  ?wcet:float ->
  ?period:float ->
  unit ->
  Taskgraph.Config.t

(** [mesh ~rows ~cols ()] is a 2-D grid of tasks where task [(i,j)]
    feeds [(i+1,j)] and [(i,j+1)] — the wavefront pattern of image and
    stencil pipelines.  Every task on its own processor, T1 parameters.
    @raise Invalid_argument if [rows < 1], [cols < 1] or the mesh is a
    single task. *)
val mesh :
  rows:int ->
  cols:int ->
  ?replenishment:float ->
  ?wcet:float ->
  ?period:float ->
  unit ->
  Taskgraph.Config.t

(** [binary_tree ~depth ()] is a balanced scatter tree: the root feeds
    two children, each feeding two more, for [depth] levels
    (2^(depth+1) − 1 tasks).
    @raise Invalid_argument if [depth < 1]. *)
val binary_tree :
  depth:int ->
  ?replenishment:float ->
  ?wcet:float ->
  ?period:float ->
  unit ->
  Taskgraph.Config.t

(** [random_chain rng ~n ()] draws WCETs in [0.5, 2], replenishment
    intervals in [20, 60] and sets the period to a feasible value
    (4× the largest WCET at minimum), so the generated instance is
    solvable with unbounded buffers. *)
val random_chain : Rng.t -> n:int -> unit -> Taskgraph.Config.t

(** [multi_job rng ~jobs ~tasks_per_job ~procs ()] builds [jobs]
    independent chain task graphs whose tasks share [procs] processors
    round-robin — the paper's multi-job setting where Constraint (9)
    couples otherwise independent graphs.
    @raise Invalid_argument if any argument is < 1 or the processors
    cannot possibly host the tasks. *)
val multi_job :
  Rng.t -> jobs:int -> tasks_per_job:int -> procs:int -> unit ->
  Taskgraph.Config.t
