module Config = Taskgraph.Config

let paper_t1 () =
  let cfg = Config.create ~granularity:1.0 () in
  let p1 = Config.add_processor cfg ~name:"p1" ~replenishment:40.0 () in
  let p2 = Config.add_processor cfg ~name:"p2" ~replenishment:40.0 () in
  let m = Config.add_memory cfg ~name:"m0" ~capacity:1_000 in
  let g = Config.add_graph cfg ~name:"t1" ~period:10.0 () in
  let wa = Config.add_task cfg g ~name:"wa" ~proc:p1 ~wcet:1.0 ~weight:1.0 () in
  let wb = Config.add_task cfg g ~name:"wb" ~proc:p2 ~wcet:1.0 ~weight:1.0 () in
  ignore
    (Config.add_buffer cfg g ~name:"bab" ~src:wa ~dst:wb ~memory:m
       ~container_size:1 ~initial_tokens:0 ~weight:0.001 ());
  cfg

let paper_t2 () =
  let cfg = Config.create ~granularity:1.0 () in
  let p1 = Config.add_processor cfg ~name:"p1" ~replenishment:40.0 () in
  let p2 = Config.add_processor cfg ~name:"p2" ~replenishment:40.0 () in
  let p3 = Config.add_processor cfg ~name:"p3" ~replenishment:40.0 () in
  let m = Config.add_memory cfg ~name:"m0" ~capacity:1_000 in
  let g = Config.add_graph cfg ~name:"t2" ~period:10.0 () in
  let wa = Config.add_task cfg g ~name:"wa" ~proc:p1 ~wcet:1.0 ~weight:1.0 () in
  let wb = Config.add_task cfg g ~name:"wb" ~proc:p2 ~wcet:1.0 ~weight:1.0 () in
  let wc = Config.add_task cfg g ~name:"wc" ~proc:p3 ~wcet:1.0 ~weight:1.0 () in
  ignore
    (Config.add_buffer cfg g ~name:"bab" ~src:wa ~dst:wb ~memory:m
       ~container_size:1 ~initial_tokens:0 ~weight:0.001 ());
  ignore
    (Config.add_buffer cfg g ~name:"bbc" ~src:wb ~dst:wc ~memory:m
       ~container_size:1 ~initial_tokens:0 ~weight:0.001 ());
  cfg

let chain ~n ?(replenishment = 40.0) ?(wcet = 1.0) ?(period = 10.0)
    ?(budget_weight = 1.0) ?(buffer_weight = 0.001) ?shared_procs () =
  if n < 2 then invalid_arg "Gen.chain: n must be >= 2";
  let nprocs = match shared_procs with None -> n | Some k -> k in
  if nprocs < 1 then invalid_arg "Gen.chain: shared_procs must be >= 1";
  let cfg = Config.create ~granularity:1.0 () in
  let procs =
    Array.init nprocs (fun i ->
        Config.add_processor cfg
          ~name:(Printf.sprintf "p%d" i)
          ~replenishment ())
  in
  let m = Config.add_memory cfg ~name:"m0" ~capacity:1_000_000 in
  let g = Config.add_graph cfg ~name:"t0" ~period () in
  let tasks =
    Array.init n (fun i ->
        Config.add_task cfg g
          ~name:(Printf.sprintf "w%d" i)
          ~proc:procs.(i mod nprocs) ~wcet ~weight:budget_weight ())
  in
  for i = 0 to n - 2 do
    ignore
      (Config.add_buffer cfg g
         ~name:(Printf.sprintf "b%d" i)
         ~src:tasks.(i) ~dst:tasks.(i + 1) ~memory:m ~container_size:1
         ~initial_tokens:0 ~weight:buffer_weight ())
  done;
  cfg

let split_join ~branches ?(replenishment = 40.0) ?(wcet = 1.0) ?(period = 10.0)
    () =
  if branches < 1 then invalid_arg "Gen.split_join: branches must be >= 1";
  let n = branches + 2 in
  let cfg = Config.create ~granularity:1.0 () in
  let procs =
    Array.init n (fun i ->
        Config.add_processor cfg
          ~name:(Printf.sprintf "p%d" i)
          ~replenishment ())
  in
  let m = Config.add_memory cfg ~name:"m0" ~capacity:1_000_000 in
  let g = Config.add_graph cfg ~name:"t0" ~period () in
  let tasks =
    Array.init n (fun i ->
        Config.add_task cfg g
          ~name:(Printf.sprintf "w%d" i)
          ~proc:procs.(i) ~wcet ~weight:1.0 ())
  in
  let source = tasks.(0) and sink = tasks.(n - 1) in
  let buf = ref 0 in
  let add_buffer src dst =
    ignore
      (Config.add_buffer cfg g
         ~name:(Printf.sprintf "b%d" !buf)
         ~src ~dst ~memory:m ~container_size:1 ~initial_tokens:0 ~weight:0.001
         ());
    incr buf
  in
  for i = 1 to branches do
    add_buffer source tasks.(i);
    add_buffer tasks.(i) sink
  done;
  cfg

let ring ~n ~initial ?(replenishment = 40.0) ?(wcet = 1.0) ?(period = 10.0) ()
    =
  if n < 2 then invalid_arg "Gen.ring: n must be >= 2";
  if initial < 1 then invalid_arg "Gen.ring: initial must be >= 1";
  let cfg = Config.create ~granularity:1.0 () in
  let procs =
    Array.init n (fun i ->
        Config.add_processor cfg
          ~name:(Printf.sprintf "p%d" i)
          ~replenishment ())
  in
  let m = Config.add_memory cfg ~name:"m0" ~capacity:1_000_000 in
  let g = Config.add_graph cfg ~name:"t0" ~period () in
  let tasks =
    Array.init n (fun i ->
        Config.add_task cfg g
          ~name:(Printf.sprintf "w%d" i)
          ~proc:procs.(i) ~wcet ~weight:1.0 ())
  in
  for i = 0 to n - 1 do
    let src = tasks.(i) and dst = tasks.((i + 1) mod n) in
    let tokens = if i = n - 1 then initial else 0 in
    ignore
      (Config.add_buffer cfg g
         ~name:(Printf.sprintf "b%d" i)
         ~src ~dst ~memory:m ~container_size:1 ~initial_tokens:tokens
         ~weight:0.001 ())
  done;
  cfg

let grid_config ~ntasks ~replenishment ~period =
  let cfg = Config.create ~granularity:1.0 () in
  let procs =
    Array.init ntasks (fun i ->
        Config.add_processor cfg
          ~name:(Printf.sprintf "p%d" i)
          ~replenishment ())
  in
  let m = Config.add_memory cfg ~name:"m0" ~capacity:1_000_000 in
  let g = Config.add_graph cfg ~name:"t0" ~period () in
  (cfg, procs, m, g)

let mesh ~rows ~cols ?(replenishment = 40.0) ?(wcet = 1.0) ?(period = 10.0) ()
    =
  if rows < 1 || cols < 1 || rows * cols < 2 then
    invalid_arg "Gen.mesh: need at least two tasks";
  let cfg, procs, m, g =
    grid_config ~ntasks:(rows * cols) ~replenishment ~period
  in
  let tasks =
    Array.init (rows * cols) (fun i ->
        Config.add_task cfg g
          ~name:(Printf.sprintf "w%d_%d" (i / cols) (i mod cols))
          ~proc:procs.(i) ~wcet ~weight:1.0 ())
  in
  let buf = ref 0 in
  let connect src dst =
    ignore
      (Config.add_buffer cfg g
         ~name:(Printf.sprintf "b%d" !buf)
         ~src ~dst ~memory:m ~container_size:1 ~initial_tokens:0 ~weight:0.001
         ());
    incr buf
  in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let here = tasks.((i * cols) + j) in
      if i + 1 < rows then connect here tasks.(((i + 1) * cols) + j);
      if j + 1 < cols then connect here tasks.((i * cols) + j + 1)
    done
  done;
  cfg

let binary_tree ~depth ?(replenishment = 40.0) ?(wcet = 1.0) ?(period = 10.0)
    () =
  if depth < 1 then invalid_arg "Gen.binary_tree: depth must be >= 1";
  let ntasks = (1 lsl (depth + 1)) - 1 in
  let cfg, procs, m, g = grid_config ~ntasks ~replenishment ~period in
  let tasks =
    Array.init ntasks (fun i ->
        Config.add_task cfg g
          ~name:(Printf.sprintf "w%d" i)
          ~proc:procs.(i) ~wcet ~weight:1.0 ())
  in
  let buf = ref 0 in
  for i = 0 to ntasks - 1 do
    List.iter
      (fun child ->
        if child < ntasks then begin
          ignore
            (Config.add_buffer cfg g
               ~name:(Printf.sprintf "b%d" !buf)
               ~src:tasks.(i) ~dst:tasks.(child) ~memory:m ~container_size:1
               ~initial_tokens:0 ~weight:0.001 ());
          incr buf
        end)
      [ (2 * i) + 1; (2 * i) + 2 ]
  done;
  cfg

let random_chain rng ~n () =
  if n < 2 then invalid_arg "Gen.random_chain: n must be >= 2";
  let wcets = Array.init n (fun _ -> Rng.float rng ~lo:0.5 ~hi:2.0) in
  let repls = Array.init n (fun _ -> Rng.float rng ~lo:20.0 ~hi:60.0) in
  let max_wcet = Array.fold_left Float.max 0.0 wcets in
  let period = Float.max (4.0 *. max_wcet) (Rng.float rng ~lo:5.0 ~hi:15.0) in
  let cfg = Config.create ~granularity:1.0 () in
  let m = Config.add_memory cfg ~name:"m0" ~capacity:1_000_000 in
  let g = Config.add_graph cfg ~name:"t0" ~period () in
  let tasks =
    Array.init n (fun i ->
        let proc =
          Config.add_processor cfg
            ~name:(Printf.sprintf "p%d" i)
            ~replenishment:repls.(i) ()
        in
        Config.add_task cfg g
          ~name:(Printf.sprintf "w%d" i)
          ~proc ~wcet:wcets.(i) ~weight:1.0 ())
  in
  for i = 0 to n - 2 do
    ignore
      (Config.add_buffer cfg g
         ~name:(Printf.sprintf "b%d" i)
         ~src:tasks.(i) ~dst:tasks.(i + 1) ~memory:m ~container_size:1
         ~initial_tokens:0 ~weight:0.001 ())
  done;
  cfg

let multi_job rng ~jobs ~tasks_per_job ~procs () =
  if jobs < 1 || tasks_per_job < 1 || procs < 1 then
    invalid_arg "Gen.multi_job: arguments must be >= 1";
  let total = jobs * tasks_per_job in
  let per_proc = (total + procs - 1) / procs in
  if per_proc > 30 then
    invalid_arg "Gen.multi_job: too many tasks per processor to be feasible";
  let cfg = Config.create ~granularity:1.0 () in
  let proc_arr =
    Array.init procs (fun i ->
        Config.add_processor cfg
          ~name:(Printf.sprintf "p%d" i)
          ~replenishment:40.0 ())
  in
  let m = Config.add_memory cfg ~name:"m0" ~capacity:1_000_000 in
  (* Loose periods keep the shared-processor setting feasible: each
     task needs β ≥ ̺·χ/µ and a processor hosts up to [per_proc]
     tasks. *)
  let next_proc = ref 0 in
  for j = 0 to jobs - 1 do
    let wcet_scale = Rng.float rng ~lo:0.5 ~hi:1.5 in
    let period = 20.0 *. float_of_int per_proc *. wcet_scale in
    let g =
      Config.add_graph cfg ~name:(Printf.sprintf "t%d" j) ~period ()
    in
    let tasks =
      Array.init tasks_per_job (fun i ->
          let p = proc_arr.(!next_proc mod procs) in
          incr next_proc;
          Config.add_task cfg g
            ~name:(Printf.sprintf "t%d.w%d" j i)
            ~proc:p
            ~wcet:(wcet_scale *. Rng.float rng ~lo:0.8 ~hi:1.2)
            ~weight:1.0 ())
    in
    for i = 0 to tasks_per_job - 2 do
      ignore
        (Config.add_buffer cfg g
           ~name:(Printf.sprintf "t%d.b%d" j i)
           ~src:tasks.(i) ~dst:tasks.(i + 1) ~memory:m ~container_size:1
           ~initial_tokens:0 ~weight:0.001 ())
    done
  done;
  cfg
