type t = { mutable state : int64 }

let create seed = { state = seed }

(* splitmix64 step (Steele, Lea & Flood 2014). *)
let next t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be > 0";
  (* Keep 62 bits so the value fits OCaml's 63-bit int non-negatively. *)
  let raw = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  raw mod bound

let float t ~lo ~hi =
  if hi <= lo then invalid_arg "Rng.float: empty range";
  let raw = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  let unit = raw /. 9007199254740992.0 (* 2^53 *) in
  lo +. (unit *. (hi -. lo))

let bool t = Int64.logand (next t) 1L = 1L

let split t = create (next t)
