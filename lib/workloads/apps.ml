module Config = Taskgraph.Config

(* A chain builder with per-task WCETs, one processor per task. *)
let chain_app ~graph ~period ~tasks ~buffer_weight =
  let cfg = Config.create ~granularity:1.0 () in
  let m = Config.add_memory cfg ~name:"m0" ~capacity:100_000 in
  let g = Config.add_graph cfg ~name:graph ~period () in
  let handles =
    List.mapi
      (fun i (name, wcet) ->
        let p =
          Config.add_processor cfg
            ~name:(Printf.sprintf "p%d" i)
            ~replenishment:40.0 ()
        in
        Config.add_task cfg g ~name ~proc:p ~wcet ~weight:1.0 ())
      tasks
  in
  let rec connect i = function
    | a :: (b :: _ as rest) ->
      ignore
        (Config.add_buffer cfg g
           ~name:(Printf.sprintf "b%d" i)
           ~src:a ~dst:b ~memory:m ~weight:buffer_weight ());
      connect (i + 1) rest
    | [ _ ] | [] -> ()
  in
  connect 0 handles;
  cfg

let h263_decoder () =
  (* QCIF frame each 33 ms ≈ a 12-Mcycle budget window at a canonical
     clock; the IDCT dominates. *)
  chain_app ~graph:"h263" ~period:12.0 ~buffer_weight:0.01
    ~tasks:[ ("vld", 0.8); ("iq", 0.5); ("idct", 2.4); ("mc", 1.3) ]

let mp3_playback () =
  chain_app ~graph:"mp3" ~period:10.0 ~buffer_weight:0.01
    ~tasks:
      [
        ("huffman", 0.6); ("requant", 0.4); ("stereo", 0.3); ("imdct", 1.8);
        ("synth", 1.2);
      ]

let modem () =
  let cfg = Config.create ~granularity:1.0 () in
  let m = Config.add_memory cfg ~name:"m0" ~capacity:100_000 in
  let g = Config.add_graph cfg ~name:"modem" ~period:8.0 () in
  let proc i =
    Config.add_processor cfg ~name:(Printf.sprintf "p%d" i) ~replenishment:40.0 ()
  in
  let task i name wcet =
    Config.add_task cfg g ~name ~proc:(proc i) ~wcet ~weight:1.0 ()
  in
  let filt = task 0 "filt" 0.7 in
  let eq = task 1 "eq" 1.1 in
  let demod = task 2 "demod" 0.9 in
  let deco = task 3 "deco" 0.6 in
  let sync = task 4 "sync" 0.4 in
  let out = task 5 "out" 0.3 in
  let buf = ref 0 in
  let connect src dst =
    ignore
      (Config.add_buffer cfg g
         ~name:(Printf.sprintf "b%d" !buf)
         ~src ~dst ~memory:m ~weight:0.01 ());
    incr buf
  in
  connect filt eq;
  connect eq demod;
  (* The equaliser output also feeds the synchroniser (fork), both
     paths joining at the decoder. *)
  connect eq sync;
  connect sync deco;
  connect demod deco;
  connect deco out;
  cfg

let car_radio () =
  let cfg = Config.create ~granularity:1.0 () in
  let p0 = Config.add_processor cfg ~name:"p0" ~replenishment:40.0 () in
  let p1 = Config.add_processor cfg ~name:"p1" ~replenishment:40.0 () in
  let m = Config.add_memory cfg ~name:"m0" ~capacity:100_000 in
  let audio = Config.add_graph cfg ~name:"audio" ~period:16.0 () in
  let dec = Config.add_task cfg audio ~name:"aud.dec" ~proc:p0 ~wcet:1.4 () in
  let drc = Config.add_task cfg audio ~name:"aud.drc" ~proc:p1 ~wcet:0.8 () in
  ignore
    (Config.add_buffer cfg audio ~name:"aud.buf" ~src:dec ~dst:drc ~memory:m
       ~weight:0.01 ());
  let ta = Config.add_graph cfg ~name:"ta" ~period:60.0 () in
  let det = Config.add_task cfg ta ~name:"ta.detect" ~proc:p0 ~wcet:2.2 () in
  let mix = Config.add_task cfg ta ~name:"ta.mix" ~proc:p1 ~wcet:1.1 () in
  ignore
    (Config.add_buffer cfg ta ~name:"ta.buf" ~src:det ~dst:mix ~memory:m
       ~weight:0.01 ());
  cfg

let all =
  [
    ("h263-decoder", h263_decoder);
    ("mp3-playback", mp3_playback);
    ("modem", modem);
    ("car-radio", car_radio);
  ]
