type t = { num : Bigint.t; den : Bigint.t }

let zero = { num = Bigint.zero; den = Bigint.one }
let one = { num = Bigint.one; den = Bigint.one }

let make num den =
  if Bigint.is_zero den then raise Division_by_zero
  else if Bigint.is_zero num then zero
  else begin
    let num, den =
      if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den)
      else (num, den)
    in
    let g = Bigint.gcd num den in
    if Bigint.equal g Bigint.one then { num; den }
    else { num = Bigint.div num g; den = Bigint.div den g }
  end

let of_bigint n = { num = n; den = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints n d = make (Bigint.of_int n) (Bigint.of_int d)

let of_float f =
  if f = 0.0 then zero
  else if not (Float.is_finite f) then
    invalid_arg (Printf.sprintf "Rat.of_float: not finite (%h)" f)
  else begin
    (* f = m·2^e with 0.5 <= |m| < 1; scale the mantissa to the 53-bit
       integer it actually is.  The conversion is exact: doubles are
       dyadic rationals. *)
    let m, e = Float.frexp f in
    let mant = Int64.of_float (Float.ldexp m 53) in
    let e = e - 53 in
    let mant = Bigint.of_int64 mant in
    if e >= 0 then of_bigint (Bigint.shift_left mant e)
    else make mant (Bigint.shift_left Bigint.one (-e))
  end

(* Naive num/.den over- or underflows once either side outgrows the
   float range, even when the quotient itself is representable.
   Normalize the quotient to ~64 bits first, then scale back with
   ldexp: exact whenever the true value is a representable dyadic. *)
let to_float t =
  if Bigint.is_zero t.num then 0.0
  else begin
    let a = Bigint.abs t.num and b = t.den in
    let shift = 64 - (Bigint.bit_length a - Bigint.bit_length b) in
    let q =
      if shift >= 0 then Bigint.div (Bigint.shift_left a shift) b
      else Bigint.div a (Bigint.shift_left b (-shift))
    in
    let f = Float.ldexp (Bigint.to_float q) (-shift) in
    if Bigint.sign t.num < 0 then -.f else f
  end

let neg t = { t with num = Bigint.neg t.num }
let abs t = { t with num = Bigint.abs t.num }

let add a b =
  make
    (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
    (Bigint.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = make (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)

let div a b =
  if Bigint.is_zero b.num then raise Division_by_zero
  else make (Bigint.mul a.num b.den) (Bigint.mul a.den b.num)

(* a/b ? c/d  <=>  a·d ? c·b   (denominators positive) *)
let compare a b =
  Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)

let equal a b = Bigint.equal a.num b.num && Bigint.equal a.den b.den
let sign t = Bigint.sign t.num
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let is_integer t = Bigint.equal t.den Bigint.one

let to_string t =
  if is_integer t then Bigint.to_string t.num
  else Bigint.to_string t.num ^ "/" ^ Bigint.to_string t.den

let pp fmt t = Format.pp_print_string fmt (to_string t)
