(** Exact longest-path Bellman–Ford over rational edge weights.

    Mirrors the float analysis in [lib/dataflow/analysis.ml]: every
    node is seeded from a virtual source with potential 0, and edges
    relax upwards ([d(src) + w > d(dst)]) — but in exact rational
    arithmetic, with no epsilon.  A fixpoint is a periodic admissible
    schedule witness; divergence proves a positive-weight cycle, which
    is extracted from the predecessor graph. *)

type verdict =
  | Feasible of Rat.t array
      (** Exact potential (start time) per node. *)
  | Positive_cycle of int list
      (** Indices into the input edge array, in cycle order.  Empty
          only in the (theoretically unreachable) case where witness
          extraction failed; the positive-cycle verdict itself is
          still sound. *)

(** [longest_path ~nodes edges] where each edge is
    [(src, dst, weight)] with node indices in [0 .. nodes-1].

    Internally all weights are brought onto the least common
    denominator once, so the relaxation loop runs on integers. *)
val longest_path : nodes:int -> (int * int * Rat.t) array -> verdict
