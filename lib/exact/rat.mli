(** Normalized arbitrary-precision rationals over {!Bigint}.

    Invariant: the denominator is positive and coprime with the
    numerator; zero is represented as 0/1.  Equality is therefore
    structural. *)

type t = private { num : Bigint.t; den : Bigint.t }

val zero : t
val one : t

(** [make num den] normalizes the fraction.  Raises [Division_by_zero]
    when [den] is zero. *)
val make : Bigint.t -> Bigint.t -> t

val of_bigint : Bigint.t -> t
val of_int : int -> t
val of_ints : int -> int -> t

(** [of_float f] is the exact value of the double [f] — every finite
    float is a dyadic rational [m·2^e], recovered losslessly from the
    mantissa/exponent decomposition.  Raises [Invalid_argument] on
    NaN and infinities. *)
val of_float : float -> t

val to_float : t -> float

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** Raises [Division_by_zero] on a zero divisor. *)
val div : t -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val min : t -> t -> t
val max : t -> t -> t

val is_integer : t -> bool

(** ["n"] when the denominator is 1, ["n/d"] otherwise. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
