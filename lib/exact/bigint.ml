(* Sign-magnitude representation.  [mag] is little-endian, base 2^30,
   with no high zero limbs; [sign] is 0 exactly when [mag] is empty.
   Base 2^30 keeps every intermediate product below 2^61, well inside
   OCaml's 63-bit native int. *)

let base_bits = 30
let base = 1 lsl base_bits
let mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

(* Strip high zero limbs. *)
let norm_mag m =
  let l = ref (Array.length m) in
  while !l > 0 && m.(!l - 1) = 0 do
    decr l
  done;
  if !l = Array.length m then m else Array.sub m 0 !l

let make sign m =
  let m = norm_mag m in
  if Array.length m = 0 then zero else { sign; mag = m }

let is_zero t = t.sign = 0
let sign t = t.sign

let mag_of_uint64 v =
  let rec limbs v acc =
    if Int64.equal v 0L then List.rev acc
    else
      limbs
        (Int64.shift_right_logical v base_bits)
        (Int64.to_int (Int64.logand v 0x3FFFFFFFL) :: acc)
  in
  Array.of_list (limbs v [])

let of_int64 v =
  if Int64.equal v 0L then zero
  else if Int64.compare v 0L > 0 then { sign = 1; mag = mag_of_uint64 v }
  else
    (* [Int64.neg min_int] re-overflows to [min_int], but its bits read
       as an unsigned 2^63 are exactly the magnitude we want. *)
    { sign = -1; mag = mag_of_uint64 (Int64.neg v) }

let of_int n = of_int64 (Int64.of_int n)
let one = of_int 1
let minus_one = of_int (-1)

let bit_length_mag m =
  let l = Array.length m in
  if l = 0 then 0
  else
    let top = m.(l - 1) in
    let bits = ref 0 in
    let v = ref top in
    while !v <> 0 do
      incr bits;
      v := !v lsr 1
    done;
    ((l - 1) * base_bits) + !bits

let bit_mag m i =
  let limb = i / base_bits in
  if limb >= Array.length m then 0 else (m.(limb) lsr (i mod base_bits)) land 1

let to_int t =
  if bit_length_mag t.mag > 62 then None
  else
    let v = ref 0 in
    for i = Array.length t.mag - 1 downto 0 do
      v := (!v lsl base_bits) lor t.mag.(i)
    done;
    Some (t.sign * !v)

let bit_length t = bit_length_mag t.mag

let to_float t =
  let v = ref 0.0 in
  for i = Array.length t.mag - 1 downto 0 do
    v := (!v *. float_of_int base) +. float_of_int t.mag.(i)
  done;
  float_of_int t.sign *. !v

let compare_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Int.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let equal a b = a.sign = b.sign && compare_mag a.mag b.mag = 0

let compare a b =
  if a.sign <> b.sign then Int.compare a.sign b.sign
  else if a.sign >= 0 then compare_mag a.mag b.mag
  else compare_mag b.mag a.mag

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let l = Int.max la lb in
  let r = Array.make (l + 1) 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let ai = if i < la then a.(i) else 0 in
    let bi = if i < lb then b.(i) else 0 in
    let s = ai + bi + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  r.(l) <- !carry;
  norm_mag r

(* Requires [a >= b]. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bi = if i < lb then b.(i) else 0 in
    let d = a.(i) - bi - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  norm_mag r

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let t = (ai * b.(j)) + r.(i + j) + !carry in
          r.(i + j) <- t land mask;
          carry := t lsr base_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let t = r.(!k) + !carry in
          r.(!k) <- t land mask;
          carry := t lsr base_bits;
          incr k
        done
      end
    done;
    norm_mag r
  end

let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then { sign = a.sign; mag = add_mag a.mag b.mag }
  else
    let c = compare_mag a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (sub_mag a.mag b.mag)
    else make b.sign (sub_mag b.mag a.mag)

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else { sign = a.sign * b.sign; mag = mul_mag a.mag b.mag }

let shift_left_mag m k =
  if Array.length m = 0 then m
  else begin
    let limbs = k / base_bits and bits = k mod base_bits in
    let lm = Array.length m in
    let r = Array.make (lm + limbs + 1) 0 in
    for i = 0 to lm - 1 do
      let v = m.(i) lsl bits in
      r.(i + limbs) <- r.(i + limbs) lor (v land mask);
      r.(i + limbs + 1) <- r.(i + limbs + 1) lor (v lsr base_bits)
    done;
    norm_mag r
  end

let shift_left t k =
  if k < 0 then invalid_arg "Bigint.shift_left: negative shift"
  else if t.sign = 0 || k = 0 then t
  else { t with mag = shift_left_mag t.mag k }

let shift_right_one_mag m =
  let l = Array.length m in
  if l = 0 then m
  else begin
    let r = Array.make l 0 in
    for i = 0 to l - 1 do
      let v = m.(i) lsr 1 in
      r.(i) <-
        (if i + 1 < l && m.(i + 1) land 1 = 1 then v lor (1 lsl (base_bits - 1))
         else v)
    done;
    norm_mag r
  end

(* Bit-by-bit long division of magnitudes; quadratic but our operands
   are a handful of limbs. *)
let divmod_mag a b =
  if compare_mag a b < 0 then ([||], a)
  else begin
    let n = bit_length_mag a in
    let q = Array.make ((n + base_bits - 1) / base_bits) 0 in
    let r = ref [||] in
    for i = n - 1 downto 0 do
      let r2 = shift_left_mag !r 1 in
      let r2 =
        if bit_mag a i = 1 then
          if Array.length r2 = 0 then [| 1 |]
          else begin
            r2.(0) <- r2.(0) lor 1;
            r2
          end
        else r2
      in
      if compare_mag r2 b >= 0 then begin
        r := sub_mag r2 b;
        q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
      end
      else r := r2
    done;
    (norm_mag q, !r)
  end

let divmod a b =
  if b.sign = 0 then raise Division_by_zero
  else if a.sign = 0 then (zero, zero)
  else
    let qm, rm = divmod_mag a.mag b.mag in
    (make (a.sign * b.sign) qm, make a.sign rm)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let trailing_zeros_mag m =
  let rec limb i = if m.(i) = 0 then limb (i + 1) else i in
  let i = limb 0 in
  let v = ref m.(i) and k = ref 0 in
  while !v land 1 = 0 do
    v := !v lsr 1;
    incr k
  done;
  (i * base_bits) + !k

let shift_right_mag m k =
  let rec go m k = if k = 0 then m else go (shift_right_one_mag m) (k - 1) in
  go m k

(* Binary gcd on magnitudes: shifts and subtractions only. *)
let gcd_mag a b =
  if Array.length a = 0 then b
  else if Array.length b = 0 then a
  else begin
    let za = trailing_zeros_mag a and zb = trailing_zeros_mag b in
    let k = Int.min za zb in
    let strip m = shift_right_mag m (trailing_zeros_mag m) in
    let rec loop u v =
      (* u, v odd *)
      let c = compare_mag u v in
      if c = 0 then u
      else
        let u, v = if c > 0 then (v, u) else (u, v) in
        loop u (strip (sub_mag v u))
    in
    shift_left_mag (loop (shift_right_mag a za) (shift_right_mag b zb)) k
  end

let gcd a b = make 1 (gcd_mag a.mag b.mag)

let lcm a b =
  if a.sign = 0 || b.sign = 0 then zero
  else
    let g = gcd a b in
    abs (mul (div a g) b)

(* Short division by a single limb (< 2^30), for decimal printing. *)
let divmod_small m d =
  let l = Array.length m in
  let q = Array.make l 0 in
  let r = ref 0 in
  for i = l - 1 downto 0 do
    let cur = (!r lsl base_bits) lor m.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (norm_mag q, !r)

let chunk = 1_000_000_000

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let groups = ref [] in
    let m = ref t.mag in
    while Array.length !m > 0 do
      let q, r = divmod_small !m chunk in
      groups := r :: !groups;
      m := q
    done;
    let buf = Buffer.create 32 in
    if t.sign < 0 then Buffer.add_char buf '-';
    (match !groups with
    | [] -> assert false
    | g :: rest ->
        Buffer.add_string buf (string_of_int g);
        List.iter (fun g -> Buffer.add_string buf (Printf.sprintf "%09d" g)) rest);
    Buffer.contents buf
  end

let of_string s =
  let s = String.trim s in
  if s = "" then invalid_arg "Bigint.of_string: empty string";
  let neg_sign, start =
    match s.[0] with '-' -> (true, 1) | '+' -> (false, 1) | _ -> (false, 0)
  in
  if start >= String.length s then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let base9 = of_int chunk in
  let i = ref start in
  let len = String.length s in
  let first = (len - start) mod 9 in
  let take n =
    let part = String.sub s !i n in
    String.iter
      (fun c ->
        if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit")
      part;
    i := !i + n;
    int_of_string part
  in
  if first > 0 then acc := of_int (take first);
  while !i < len do
    acc := add (mul !acc base9) (of_int (take 9))
  done;
  if neg_sign then neg !acc else !acc

let pp fmt t = Format.pp_print_string fmt (to_string t)
