(** Arbitrary-precision signed integers, dependency-free.

    Magnitudes are little-endian arrays of base-2^30 limbs, so limb
    products fit comfortably in OCaml's 63-bit native [int].  The
    implementation favours being obviously correct over being fast:
    schoolbook multiplication, bit-by-bit long division and binary gcd
    are all that the exact Bellman–Ford certifier needs, on numbers a
    few limbs long. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t
val of_int64 : int64 -> t

(** [to_int t] is [Some n] when [t] fits a native [int]. *)
val to_int : t -> int option

val to_float : t -> float

(** Number of bits in the magnitude; 0 for zero. *)
val bit_length : t -> int

(** [sign t] is [-1], [0] or [1]. *)
val sign : t -> int

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [shift_left t k] is [t·2^k].  [k] must be non-negative. *)
val shift_left : t -> int -> t

(** [divmod a b] is [(q, r)] with [a = q·b + r], truncated towards
    zero and [|r| < |b|], matching native [(/)] and [(mod)].
    Raises [Division_by_zero] when [b] is zero. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** [gcd a b] is the non-negative greatest common divisor (binary
    gcd — no division).  [gcd zero zero] is [zero]. *)
val gcd : t -> t -> t

(** [lcm a b] is the non-negative least common multiple. *)
val lcm : t -> t -> t

val to_string : t -> string
val of_string : string -> t
val pp : Format.formatter -> t -> unit
