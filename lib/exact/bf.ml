type verdict = Feasible of Rat.t array | Positive_cycle of int list

let longest_path ~nodes edges =
  if nodes = 0 then Feasible [||]
  else begin
    (* One common denominator for every weight: the relaxation loop
       then needs only integer adds and compares. *)
    let den =
      Array.fold_left
        (fun acc (_, _, w) -> Bigint.lcm acc w.Rat.den)
        Bigint.one edges
    in
    let scaled =
      Array.map
        (fun (_, _, w) -> Bigint.mul w.Rat.num (Bigint.div den w.Rat.den))
        edges
    in
    let d = Array.make nodes Bigint.zero in
    let pred = Array.make nodes (-1) in
    let last = ref (-1) in
    let relax () =
      let any = ref false in
      Array.iteri
        (fun k (s, t, _) ->
          let nd = Bigint.add d.(s) scaled.(k) in
          if Bigint.compare nd d.(t) > 0 then begin
            d.(t) <- nd;
            pred.(t) <- k;
            any := true;
            last := t
          end)
        edges;
      !any
    in
    let changed = ref true in
    let rounds = ref 0 in
    while !changed && !rounds <= nodes do
      changed := relax ();
      incr rounds
    done;
    if not !changed then
      Feasible (Array.map (fun di -> Rat.make di den) d)
    else begin
      (* A relaxation fired on round [nodes + 1]: some cycle has
         positive weight.  Trace the predecessor graph back from the
         last updated node until it closes on itself; a few extra
         relaxation passes deepen the predecessor pointers if the
         first trace runs off the relaxed region. *)
      let extract () =
        let visited = Array.make nodes (-1) in
        let rec walk v step =
          if step > nodes + 1 || v < 0 || pred.(v) < 0 then None
          else if visited.(v) >= 0 then Some v
          else begin
            visited.(v) <- step;
            let s, _, _ = edges.(pred.(v)) in
            walk s (step + 1)
          end
        in
        match walk !last 0 with
        | None -> None
        | Some u ->
            let rec collect v acc steps =
              if steps > nodes + 1 then None
              else
                let e = pred.(v) in
                let s, _, _ = edges.(e) in
                if s = u then Some (e :: acc)
                else collect s (e :: acc) (steps + 1)
            in
            collect u [] 0
      in
      let rec attempt i =
        match extract () with
        | Some cycle -> Positive_cycle cycle
        | None when i < nodes ->
            ignore (relax ());
            attempt (i + 1)
        | None -> Positive_cycle []
      in
      attempt 0
    end
  end
