(** Linear-program builder on top of {!Tableau}.

    Supports named variables with optional bounds (including free
    variables, which are split internally), [≤]/[≥]/[=] rows, and a
    minimisation or maximisation objective.  Verdicts are exact:
    [Infeasible] and [Unbounded] come from the two-phase simplex, which
    makes this solver the reference the interior-point code is tested
    against, and the engine of the paper's two-phase baseline flow. *)

type problem
type var

(** Handle of a constraint row, for querying its dual multiplier. *)
type cns

type relation = Le | Ge | Eq

type solution = {
  objective : float;
  value : var -> float;  (** optimal value of a variable of this problem *)
  dual : cns -> float;
      (** shadow price: the rate of change of the optimum per unit of
          the constraint's right-hand side, in the problem's original
          sense and orientation *)
}

type verdict = Optimal of solution | Infeasible | Unbounded

(** [create ()] is an empty problem (minimisation by default). *)
val create : unit -> problem

(** [add_variable p ~name ?lb ?ub ()] declares a variable.
    [lb = Some 0.] by default; [lb = None] means free below,
    [ub = None] (default) means free above. *)
val add_variable :
  problem -> name:string -> ?lb:float option -> ?ub:float option -> unit -> var

(** [add_constraint p terms rel rhs] adds the row
    [Σ coeff·var  rel  rhs] and returns its handle.  Duplicate
    variables in [terms] are summed. *)
val add_constraint :
  problem -> (float * var) list -> relation -> float -> cns

(** [set_objective p ?maximize terms] sets the objective
    [Σ coeff·var] ([maximize] defaults to [false]). *)
val set_objective : problem -> ?maximize:bool -> (float * var) list -> unit

(** [num_variables p] and [num_constraints p] report problem size. *)
val num_variables : problem -> int

val num_constraints : problem -> int

(** [name p v] is the declared name of [v]. *)
val name : problem -> var -> string

(** [solve p] runs two-phase simplex and maps the verdict back to the
    original variables.  The reported [objective] is in the original
    sense (negated back for maximisation). *)
val solve : problem -> verdict
