type verdict =
  | Optimal of { x : Linalg.Vec.t; objective : float; duals : Linalg.Vec.t }
  | Infeasible
  | Unbounded

let eps_pivot = 1e-9
let eps_cost = 1e-9
let eps_feas = 1e-7
let stall_budget = 64

(* The tableau stores B⁻¹·[A | b] row by row.  [basis.(i)] is the index of
   the variable basic in row [i].  [allowed j] says whether column [j] may
   enter the basis (used to freeze artificials in phase 2). *)
type state = {
  m : int;
  n : int;
  tab : float array array; (* m rows of n+1 entries; last entry is rhs *)
  basis : int array;
}

let pivot st ~row ~col =
  let t = st.tab in
  let prow = t.(row) in
  let p = prow.(col) in
  for j = 0 to st.n do
    prow.(j) <- prow.(j) /. p
  done;
  for i = 0 to st.m - 1 do
    if i <> row then begin
      let r = t.(i) in
      let f = r.(col) in
      if f <> 0.0 then
        for j = 0 to st.n do
          r.(j) <- r.(j) -. (f *. prow.(j))
        done
    end
  done;
  st.basis.(row) <- col

(* Reduced costs under objective [c] (length n): z = c − cBᵀ·B⁻¹·A. *)
let reduced_costs st c =
  let z = Array.copy c in
  for i = 0 to st.m - 1 do
    let cb = c.(st.basis.(i)) in
    if cb <> 0.0 then begin
      let r = st.tab.(i) in
      for j = 0 to st.n - 1 do
        z.(j) <- z.(j) -. (cb *. r.(j))
      done
    end
  done;
  z

let objective_of st c =
  let acc = ref 0.0 in
  for i = 0 to st.m - 1 do
    acc := !acc +. (c.(st.basis.(i)) *. st.tab.(i).(st.n))
  done;
  !acc

(* Ratio test: leaving row for entering column [col]; Bland tie-break on
   the basic variable index for anti-cycling. *)
let leaving_row st ~col =
  let best = ref (-1) and best_ratio = ref infinity in
  for i = 0 to st.m - 1 do
    let a = st.tab.(i).(col) in
    if a > eps_pivot then begin
      let ratio = st.tab.(i).(st.n) /. a in
      if
        ratio < !best_ratio -. 1e-12
        || (Float.abs (ratio -. !best_ratio) <= 1e-12
           && (!best < 0 || st.basis.(i) < st.basis.(!best)))
      then begin
        best := i;
        best_ratio := ratio
      end
    end
  done;
  !best

type phase_result = Phase_optimal | Phase_unbounded

(* Run simplex iterations for objective [c], entering columns restricted by
   [allowed].  Dantzig rule normally; Bland's rule once the objective has
   stalled for [stall_budget] iterations (guarantees termination). *)
let run_phase st c allowed =
  let rec loop stalls last_obj =
    let z = reduced_costs st c in
    let entering =
      if stalls >= stall_budget then begin
        (* Bland: smallest index with negative reduced cost. *)
        let j = ref (-1) in
        (try
           for k = 0 to st.n - 1 do
             if allowed k && z.(k) < -.eps_cost then begin
               j := k;
               raise Exit
             end
           done
         with Exit -> ());
        !j
      end
      else begin
        let j = ref (-1) and best = ref (-.eps_cost) in
        for k = 0 to st.n - 1 do
          if allowed k && z.(k) < !best then begin
            best := z.(k);
            j := k
          end
        done;
        !j
      end
    in
    if entering < 0 then Phase_optimal
    else
      let row = leaving_row st ~col:entering in
      if row < 0 then Phase_unbounded
      else begin
        pivot st ~row ~col:entering;
        let obj = objective_of st c in
        let stalls' = if obj < last_obj -. 1e-12 then 0 else stalls + 1 in
        loop stalls' obj
      end
  in
  loop 0 (objective_of st c)

let solve ~a ~b ~c =
  let m = Linalg.Mat.rows a and n0 = Linalg.Mat.cols a in
  if Linalg.Vec.dim b <> m then invalid_arg "Tableau.solve: b dimension";
  if Linalg.Vec.dim c <> n0 then invalid_arg "Tableau.solve: c dimension";
  Array.iter
    (fun bi -> if bi < -1e-12 then invalid_arg "Tableau.solve: b must be >= 0")
    b;
  let n = n0 + m in
  (* Columns 0..n0-1 are structural, n0..n-1 are artificials. *)
  let tab =
    Array.init m (fun i ->
        Array.init (n + 1) (fun j ->
            if j < n0 then Linalg.Mat.get a i j
            else if j < n then if j - n0 = i then 1.0 else 0.0
            else Float.max b.(i) 0.0))
  in
  let st = { m; n; tab; basis = Array.init m (fun i -> n0 + i) } in
  (* Phase 1. *)
  let c1 = Array.init n (fun j -> if j >= n0 then 1.0 else 0.0) in
  (match run_phase st c1 (fun _ -> true) with
  | Phase_optimal -> ()
  | Phase_unbounded ->
    (* Phase-1 objective is bounded below by 0; unbounded is impossible. *)
    assert false);
  if objective_of st c1 > eps_feas then Infeasible
  else begin
    (* Drive remaining artificials (basic at value 0) out of the basis
       where possible; rows where no structural pivot exists are redundant
       and harmless since the artificial stays at zero and is frozen. *)
    for i = 0 to m - 1 do
      if st.basis.(i) >= n0 then begin
        let j = ref 0 and found = ref false in
        while (not !found) && !j < n0 do
          if Float.abs st.tab.(i).(!j) > eps_pivot then found := true
          else incr j
        done;
        if !found then pivot st ~row:i ~col:!j
      end
    done;
    (* Phase 2: original costs; artificials frozen out. *)
    let c2 = Array.init n (fun j -> if j < n0 then c.(j) else 0.0) in
    match run_phase st c2 (fun j -> j < n0) with
    | Phase_unbounded -> Unbounded
    | Phase_optimal ->
      let x = Array.make n0 0.0 in
      for i = 0 to m - 1 do
        if st.basis.(i) < n0 then x.(st.basis.(i)) <- st.tab.(i).(st.n)
      done;
      (* The dual of row i is cBᵀB⁻¹eᵢ = −(reduced cost of the i-th
         artificial column) under the phase-2 costs. *)
      let z = reduced_costs st c2 in
      let duals = Array.init m (fun i -> -.z.(n0 + i)) in
      Optimal { x; objective = objective_of st c2; duals }
  end
