(** Dense two-phase simplex on the standard form

    {v minimize cᵀx  subject to  A·x = b,  x ≥ 0 v}

    with [b ≥ 0] required (negate rows beforehand).  Pivoting uses
    Dantzig's rule with a fallback to Bland's rule after a stall budget,
    which guarantees termination.  This is the exact-verdict workhorse
    behind {!Lp}; callers normally use that higher-level interface. *)

type verdict =
  | Optimal of {
      x : Linalg.Vec.t;
      objective : float;
      duals : Linalg.Vec.t;
          (** one multiplier per row: [duals.(i)] is the rate of change
              of the optimum per unit of [b.(i)] (recovered from the
              reduced costs of the artificial columns) *)
    }
  | Infeasible  (** phase 1 ended with a positive artificial objective *)
  | Unbounded   (** a negative reduced cost column has no positive entry *)

(** [solve ~a ~b ~c] runs two-phase simplex.
    @raise Invalid_argument on dimension mismatch or negative [b]. *)
val solve : a:Linalg.Mat.t -> b:Linalg.Vec.t -> c:Linalg.Vec.t -> verdict
