type var = int
type cns = int
type relation = Le | Ge | Eq

type var_decl = { vname : string; lb : float option; ub : float option }

type row = { terms : (float * var) list; rel : relation; rhs : float }

type problem = {
  mutable vars : var_decl list; (* reversed *)
  mutable nvars : int;
  mutable rows : row list; (* reversed *)
  mutable nrows : int;
  mutable obj : (float * var) list;
  mutable maximize : bool;
}

type solution = {
  objective : float;
  value : var -> float;
  dual : cns -> float;
}
type verdict = Optimal of solution | Infeasible | Unbounded

let create () =
  { vars = []; nvars = 0; rows = []; nrows = 0; obj = []; maximize = false }

let add_variable p ~name ?(lb = Some 0.0) ?(ub = None) () =
  let v = p.nvars in
  p.vars <- { vname = name; lb; ub } :: p.vars;
  p.nvars <- p.nvars + 1;
  v

let check_var p v =
  if v < 0 || v >= p.nvars then invalid_arg "Lp: variable of another problem"

let add_constraint p terms rel rhs =
  List.iter (fun (_, v) -> check_var p v) terms;
  let c = p.nrows in
  p.rows <- { terms; rel; rhs } :: p.rows;
  p.nrows <- p.nrows + 1;
  c

let set_objective p ?(maximize = false) terms =
  List.iter (fun (_, v) -> check_var p v) terms;
  p.obj <- terms;
  p.maximize <- maximize

let num_variables p = p.nvars
let num_constraints p = p.nrows

let name p v =
  check_var p v;
  (List.nth p.vars (p.nvars - 1 - v)).vname

(* Encoding of an original variable in the standard-form column space. *)
type encoding =
  | Shifted of int * float  (* x = col + shift, col ≥ 0 *)
  | Split of int * int      (* x = col⁺ − col⁻ *)

let solve p =
  let decls = Array.of_list (List.rev p.vars) in
  let rows = List.rev p.rows in
  (* Assign standard-form columns. *)
  let ncols = ref 0 in
  let fresh () =
    let c = !ncols in
    incr ncols;
    c
  in
  let enc =
    Array.map
      (fun d ->
        match d.lb with
        | Some l -> Shifted (fresh (), l)
        | None -> Split (fresh (), fresh ()))
      decls
  in
  (* Upper bounds become extra ≤ rows. *)
  let ub_rows =
    Array.to_list decls
    |> List.mapi (fun v d ->
           match d.ub with
           | None -> []
           | Some u -> [ { terms = [ (1.0, v) ]; rel = Le; rhs = u } ])
    |> List.concat
  in
  let all_rows = rows @ ub_rows in
  (* A row Σ coeff·x rel rhs in original variables becomes a row over the
     standard columns with the shifts folded into the rhs. *)
  let encode_row r =
    let coeffs = Hashtbl.create 8 in
    let addc col v =
      let cur = try Hashtbl.find coeffs col with Not_found -> 0.0 in
      Hashtbl.replace coeffs col (cur +. v)
    in
    let rhs = ref r.rhs in
    List.iter
      (fun (coef, v) ->
        match enc.(v) with
        | Shifted (col, shift) ->
          addc col coef;
          rhs := !rhs -. (coef *. shift)
        | Split (cp, cm) ->
          addc cp coef;
          addc cm (-.coef))
      r.terms;
    (coeffs, r.rel, !rhs)
  in
  let encoded = List.map encode_row all_rows in
  (* Slack / surplus columns, after normalising rhs ≥ 0. *)
  let flipped_sign =
    List.map (fun (_, _, rhs) -> if rhs < 0.0 then -1.0 else 1.0) encoded
  in
  let normalised =
    List.map
      (fun (coeffs, rel, rhs) ->
        if rhs < 0.0 then begin
          let flipped = Hashtbl.create (Hashtbl.length coeffs) in
          Hashtbl.iter (fun k v -> Hashtbl.replace flipped k (-.v)) coeffs;
          let rel' = match rel with Le -> Ge | Ge -> Le | Eq -> Eq in
          (flipped, rel', -.rhs)
        end
        else (coeffs, rel, rhs))
      encoded
  in
  let slack_cols =
    List.map
      (fun (_, rel, _) ->
        match rel with Le -> Some (fresh (), 1.0) | Ge -> Some (fresh (), -1.0) | Eq -> None)
      normalised
  in
  let n = !ncols and m = List.length normalised in
  let a = Linalg.Mat.create m n in
  let b = Linalg.Vec.create m in
  List.iteri
    (fun i ((coeffs, _, rhs), slack) ->
      Hashtbl.iter (fun col v -> Linalg.Mat.update a i col (fun x -> x +. v)) coeffs;
      (match slack with
      | Some (col, sign) -> Linalg.Mat.set a i col sign
      | None -> ());
      b.(i) <- rhs)
    (List.combine normalised slack_cols);
  (* Objective over standard columns (sense folded to minimisation). *)
  let c = Linalg.Vec.create n in
  let sense = if p.maximize then -1.0 else 1.0 in
  let obj_shift = ref 0.0 in
  List.iter
    (fun (coef, v) ->
      let coef = sense *. coef in
      match enc.(v) with
      | Shifted (col, shift) ->
        c.(col) <- c.(col) +. coef;
        obj_shift := !obj_shift +. (coef *. shift)
      | Split (cp, cm) ->
        c.(cp) <- c.(cp) +. coef;
        c.(cm) <- c.(cm) -. coef)
    p.obj;
  match Tableau.solve ~a ~b ~c with
  | Tableau.Infeasible -> Infeasible
  | Tableau.Unbounded -> Unbounded
  | Tableau.Optimal { x; objective; duals } ->
    let value v =
      check_var p v;
      match enc.(v) with
      | Shifted (col, shift) -> x.(col) +. shift
      | Split (cp, cm) -> x.(cp) -. x.(cm)
    in
    let flips = Array.of_list flipped_sign in
    let dual c =
      if c < 0 || c >= p.nrows then
        invalid_arg "Lp: constraint of another problem"
      (* User rows come first in the standard form, in order; flipping
         a row negates its multiplier, and the minimisation fold
         (sense) maps it back to the original objective sense. *)
      else sense *. flips.(c) *. duals.(c)
    in
    let obj = sense *. (objective +. !obj_shift) in
    Optimal { objective = obj; value; dual }
